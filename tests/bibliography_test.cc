#include "workload/bibliography.h"

#include "gtest/gtest.h"
#include "logic/parser.h"
#include "pde/certain_answers.h"
#include "pde/generic_solver.h"
#include "pde/repairs.h"
#include "pde/solution.h"
#include "tests/test_util.h"

namespace pdx {
namespace {

using testing_util::Unwrap;

TEST(BibliographyTest, SettingShape) {
  SymbolTable symbols;
  PdeSetting setting = Unwrap(MakeBibliographySetting(&symbols));
  EXPECT_EQ(setting.source_relation_count(), 4);
  EXPECT_EQ(setting.target_relation_count(), 3);
  EXPECT_EQ(setting.st_tgds().size(), 4u);
  EXPECT_EQ(setting.ts_tgds().size(), 1u);
  EXPECT_EQ(setting.target_egds().size(), 1u);
  // The target egd takes it out of C_tract even though Σ_st/Σ_ts are tame.
  EXPECT_TRUE(setting.ctract_report().condition1);
  EXPECT_FALSE(setting.InCtract());
  EXPECT_TRUE(setting.TargetTgdsWeaklyAcyclic());
}

TEST(BibliographyTest, CleanWorkloadIsSolvable) {
  SymbolTable symbols;
  PdeSetting setting = Unwrap(MakeBibliographySetting(&symbols));
  Rng rng(11);
  BibliographyWorkloadOptions opts;
  opts.dblp_papers = 5;
  opts.arxiv_papers = 3;
  opts.overlap = 2;
  BibliographyWorkload workload =
      MakeBibliographyWorkload(setting, opts, &rng, &symbols);
  GenericSolveResult result = Unwrap(GenericExistsSolution(
      setting, workload.source, workload.target, &symbols));
  ASSERT_EQ(result.outcome, SolveOutcome::kSolutionFound);
  EXPECT_TRUE(IsSolution(setting, workload.source, workload.target,
                         *result.solution, symbols));
  // Every paper known to either peer appears in the catalog.
  RelationId pub = setting.schema().FindRelation("Pub").value();
  EXPECT_EQ(result.solution->tuples(pub).size(),
            5u + 1u);  // 5 DBLP papers + 1 non-overlapping preprint
}

TEST(BibliographyTest, YearConflictIsUnsolvableAndUnrepairable) {
  SymbolTable symbols;
  PdeSetting setting = Unwrap(MakeBibliographySetting(&symbols));
  Rng rng(11);
  BibliographyWorkloadOptions opts;
  opts.dblp_papers = 3;
  opts.arxiv_papers = 0;
  opts.overlap = 0;
  opts.inject_year_conflict = true;
  BibliographyWorkload workload =
      MakeBibliographyWorkload(setting, opts, &rng, &symbols);
  GenericSolveResult result = Unwrap(GenericExistsSolution(
      setting, workload.source, workload.target, &symbols));
  EXPECT_EQ(result.outcome, SolveOutcome::kNoSolution);
  // The conflict comes from the *source*, so no subset of J repairs it:
  // zero repairs (certainty under repairs is vacuous).
  std::vector<Instance> repairs = Unwrap(ComputeSubsetRepairs(
      setting, workload.source, workload.target, &symbols));
  EXPECT_TRUE(repairs.empty());
}

TEST(BibliographyTest, UnbackedCatalogYearsAreRepairable) {
  SymbolTable symbols;
  PdeSetting setting = Unwrap(MakeBibliographySetting(&symbols));
  Rng rng(13);
  BibliographyWorkloadOptions opts;
  opts.dblp_papers = 3;
  opts.arxiv_papers = 1;
  opts.overlap = 0;
  opts.unbacked_catalog_years = 2;
  BibliographyWorkload workload =
      MakeBibliographyWorkload(setting, opts, &rng, &symbols);
  GenericSolveResult direct = Unwrap(GenericExistsSolution(
      setting, workload.source, workload.target, &symbols));
  EXPECT_EQ(direct.outcome, SolveOutcome::kNoSolution);
  std::vector<Instance> repairs = Unwrap(ComputeSubsetRepairs(
      setting, workload.source, workload.target, &symbols));
  ASSERT_EQ(repairs.size(), 1u);
  EXPECT_EQ(repairs[0].fact_count(), 0u);  // both unbacked years dropped
}

TEST(BibliographyTest, CertainAnswersAndLowerBoundAgreeHere) {
  SymbolTable symbols;
  PdeSetting setting = Unwrap(MakeBibliographySetting(&symbols));
  Rng rng(17);
  BibliographyWorkloadOptions opts;
  opts.dblp_papers = 3;
  opts.arxiv_papers = 2;
  opts.overlap = 1;
  opts.authors_per_paper = 1;
  BibliographyWorkload workload =
      MakeBibliographyWorkload(setting, opts, &rng, &symbols);
  UnionQuery q = Unwrap(ParseUnionQuery("q(p,t) :- Pub(p,t).",
                                        setting.schema(), &symbols));
  CertainAnswersResult exact = Unwrap(ComputeCertainAnswers(
      setting, workload.source, workload.target, q, &symbols));
  CertainLowerBoundResult lower = Unwrap(ComputeCertainAnswersLowerBound(
      setting, workload.source, workload.target, q, &symbols));
  ASSERT_FALSE(exact.no_solution);
  // The lower bound must be a subset of the exact answers; in this
  // scenario Σ_st forces all Pub facts, so they coincide.
  EXPECT_EQ(lower.answers, exact.answers);
}

}  // namespace
}  // namespace pdx
