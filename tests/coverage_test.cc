// Targeted coverage of subtle interaction paths that the per-module suites
// do not reach: egd merges repairing transient Σ_ts violations inside the
// generic solver, unions of conjunctive queries in certain answers,
// three-peer multi-PDE merges, and null-carrying target instances.

#include <set>

#include "gtest/gtest.h"
#include "logic/parser.h"
#include "pde/certain_answers.h"
#include "pde/generic_solver.h"
#include "pde/multi_pde.h"
#include "pde/solution.h"
#include "tests/test_util.h"

namespace pdx {
namespace {

using testing_util::ParseOrDie;
using testing_util::Unwrap;

// The "fixable then fixed" path: a Σ_ts violation involving a null is not
// permanent because a Σ_t egd later merges the null into a constant,
// turning the violated trigger into a satisfied one. A solver that pruned
// null-involving Σ_ts violations eagerly would wrongly report kNoSolution
// on the fresh-null branch (the other branches still find the solution;
// the enumerate_all check below would then under-enumerate).
TEST(CoverageTest, EgdMergeRepairsTransientTsViolation) {
  SymbolTable symbols;
  auto setting = Unwrap(PdeSetting::Create(
      {{"E", 2}}, {{"K", 2}, {"H", 2}},
      "E(x,y) -> exists z: K(x,z).\n"
      "E(x,y) -> H(x,y).",
      "K(x,z) -> E(x,z).",
      "K(x,z) & H(x,y) -> z = y.", &symbols));
  Instance source = ParseOrDie(setting, "E(a,b).", &symbols);
  GenericSolverOptions options;
  options.enumerate_all = true;
  GenericSolveResult result = Unwrap(GenericExistsSolution(
      setting, source, setting.EmptyInstance(), &symbols, options));
  ASSERT_EQ(result.outcome, SolveOutcome::kSolutionFound);
  // Every branch (z = b directly, and z = fresh-null merged to b by the
  // egd) converges on the same single solution {H(a,b), K(a,b)}.
  ASSERT_EQ(result.solutions.size(), 1u);
  EXPECT_EQ(result.solutions[0].ToString(symbols), "H(a,b).\nK(a,b).");
  EXPECT_TRUE(IsSolution(setting, source, setting.EmptyInstance(),
                         result.solutions[0], symbols));
}

TEST(CoverageTest, UnionQueriesInCertainAnswers) {
  SymbolTable symbols;
  auto setting = Unwrap(PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}, {"F", 2}},
      "E(x,z) & E(z,y) -> H(x,y).\n"
      "E(x,x) -> F(x,x).",
      "H(x,y) -> E(x,y).\n"
      "F(x,y) -> E(x,y).",
      "", &symbols));
  Instance source =
      ParseOrDie(setting, "E(a,b). E(b,c). E(a,c). E(d,d).", &symbols);
  UnionQuery q = Unwrap(ParseUnionQuery(
      "q(x) :- H(x,y).\nq(x) :- F(x,y).", setting.schema(), &symbols));
  CertainAnswersResult result = Unwrap(ComputeCertainAnswers(
      setting, source, setting.EmptyInstance(), q, &symbols));
  ASSERT_FALSE(result.no_solution);
  // Certain: a (from forced H(a,c)) and d (from forced F(d,d)).
  Value a = symbols.InternConstant("a");
  Value d = symbols.InternConstant("d");
  std::set<Tuple> answers(result.answers.begin(), result.answers.end());
  EXPECT_EQ(answers.size(), 2u);
  EXPECT_TRUE(answers.count(Tuple{a}) > 0);
  EXPECT_TRUE(answers.count(Tuple{d}) > 0);
}

TEST(CoverageTest, ThreePeerMultiPde) {
  SymbolTable symbols;
  std::vector<PeerSpec> peers = {
      {{{"A", 1}}, "A(x) -> T(x).", "", ""},
      {{{"B", 1}}, "B(x) -> T(x).", "T(x) -> B(x).", ""},
      {{{"C", 1}}, "C(x) -> T(x).", "", ""},
  };
  PdeSetting merged = Unwrap(MergeMultiPde(peers, {{"T", 1}}, &symbols));
  EXPECT_EQ(merged.source_relation_count(), 3);
  // Peer B's Σ_ts makes B the gatekeeper: everything in T must be in B.
  Instance no = ParseOrDie(merged, "A(x1). B(x2). C(x3).", &symbols);
  GenericSolveResult blocked = Unwrap(GenericExistsSolution(
      merged, no, merged.EmptyInstance(), &symbols));
  EXPECT_EQ(blocked.outcome, SolveOutcome::kNoSolution);

  Instance yes = ParseOrDie(
      merged, "A(x1). B(x1). B(x2). B(x3). C(x3).", &symbols);
  GenericSolveResult ok = Unwrap(GenericExistsSolution(
      merged, yes, merged.EmptyInstance(), &symbols));
  ASSERT_EQ(ok.outcome, SolveOutcome::kSolutionFound);
  EXPECT_TRUE(
      IsSolution(merged, yes, merged.EmptyInstance(), *ok.solution, symbols));
}

// The paper's J is null-free, but Definition 2 does not require that; the
// engine accepts a target instance carrying labeled nulls, which then act
// as plain (unknown-but-fixed) values.
TEST(CoverageTest, NullCarryingTargetInstance) {
  SymbolTable symbols;
  PdeSetting setting = testing_util::MakeExample1Setting(&symbols);
  Instance source =
      ParseOrDie(setting, "E(a,b). E(b,c). E(a,c).", &symbols);
  // J contains H(a, _n): Σ_ts requires E(a, _n) — the null matches no
  // source constant, so the pair is unsolvable.
  Instance target = ParseOrDie(setting, "H(a,_n).", &symbols);
  GenericSolveResult result = Unwrap(GenericExistsSolution(
      setting, source, target, &symbols));
  EXPECT_EQ(result.outcome, SolveOutcome::kNoSolution);
}

// Marked positions are computed from existential variables only; constants
// in Σ_st heads do not mark, so a ts-tgd reading a constant-fed position
// keeps condition 1 intact.
TEST(CoverageTest, ConstantsInStHeadsDoNotMark) {
  SymbolTable symbols;
  auto setting = Unwrap(PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}},
      "E(x,y) -> H(x,'tagged').",
      // x appears twice in the LHS but at unmarked positions.
      "H(x,y) & H(x,z) -> E(x,x).", "", &symbols));
  const CtractReport& report = setting.ctract_report();
  EXPECT_TRUE(report.condition1);
  EXPECT_TRUE(report.condition2_2);  // no marked variables at all
  EXPECT_TRUE(setting.InCtract());
}

// Certain answers of a query whose body spans two target relations.
TEST(CoverageTest, MultiRelationQueryBody) {
  SymbolTable symbols;
  auto setting = Unwrap(PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}, {"F", 2}},
      "E(x,y) -> H(x,y) & F(y,x).",
      "H(x,y) -> E(x,y).", "", &symbols));
  Instance source = ParseOrDie(setting, "E(a,b).", &symbols);
  UnionQuery q = Unwrap(ParseUnionQuery("q(x) :- H(x,y) & F(y,x).",
                                        setting.schema(), &symbols));
  CertainAnswersResult result = Unwrap(ComputeCertainAnswers(
      setting, source, setting.EmptyInstance(), q, &symbols));
  Value a = symbols.InternConstant("a");
  ASSERT_EQ(result.answers.size(), 1u);
  EXPECT_EQ(result.answers[0], (Tuple{a}));
}

}  // namespace
}  // namespace pdx
