#include "logic/parser.h"

#include "gtest/gtest.h"

namespace pdx {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.AddRelation("E", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("H", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("P", 4).ok());
    ASSERT_TRUE(schema_.AddRelation("R", 1).ok());
    ASSERT_TRUE(schema_.AddRelation("G", 1).ok());
  }

  Schema schema_;
  SymbolTable symbols_;
};

TEST_F(ParserTest, ParsesFullTgd) {
  auto tgd = ParseTgd("E(x,z) & E(z,y) -> H(x,y).", schema_, &symbols_);
  ASSERT_TRUE(tgd.ok());
  EXPECT_EQ(tgd->body.size(), 2u);
  EXPECT_EQ(tgd->head.size(), 1u);
  EXPECT_EQ(tgd->var_count, 3);
  EXPECT_TRUE(tgd->IsFull());
  EXPECT_FALSE(tgd->IsLav());
  EXPECT_TRUE(tgd->IsGav());
}

TEST_F(ParserTest, ParsesExplicitExistentials) {
  auto tgd = ParseTgd("H(x,y) -> exists z: E(x,z) & E(z,y).", schema_,
                      &symbols_);
  ASSERT_TRUE(tgd.ok());
  EXPECT_FALSE(tgd->IsFull());
  int existential_count = 0;
  for (bool e : tgd->existential) existential_count += e ? 1 : 0;
  EXPECT_EQ(existential_count, 1);
  EXPECT_TRUE(tgd->IsLav());
}

TEST_F(ParserTest, ImplicitExistentialsFromHeadOnlyVariables) {
  auto tgd = ParseTgd("E(x,y) -> P(x,z,y,w).", schema_, &symbols_);
  ASSERT_TRUE(tgd.ok());
  int existential_count = 0;
  for (bool e : tgd->existential) existential_count += e ? 1 : 0;
  EXPECT_EQ(existential_count, 2);  // z and w
}

TEST_F(ParserTest, CommaIsConjunction) {
  auto tgd = ParseTgd("E(x,z), E(z,y) -> H(x,y).", schema_, &symbols_);
  ASSERT_TRUE(tgd.ok());
  EXPECT_EQ(tgd->body.size(), 2u);
}

TEST_F(ParserTest, ParsesEgd) {
  auto egd = ParseEgd("P(x,z,y,w) & P(x,z2,y2,w2) -> z = z2.", schema_,
                      &symbols_);
  ASSERT_TRUE(egd.ok());
  EXPECT_EQ(egd->body.size(), 2u);
  EXPECT_NE(egd->left_var, egd->right_var);
}

TEST_F(ParserTest, RejectsEgdWithUnboundVariable) {
  EXPECT_FALSE(ParseEgd("E(x,y) -> x = q.", schema_, &symbols_).ok());
}

TEST_F(ParserTest, ParsesDisjunctiveTgd) {
  auto deps = ParseDependencies(
      "H(x,u) -> (R(u)) | (G(u)).", schema_, &symbols_);
  ASSERT_TRUE(deps.ok());
  EXPECT_EQ(deps->disjunctive_tgds.size(), 1u);
  EXPECT_EQ(deps->disjunctive_tgds[0].head_disjuncts.size(), 2u);
}

TEST_F(ParserTest, ParsesConstantsInDependencies) {
  auto tgd = ParseTgd("E(x,'root') -> H(x, 42).", schema_, &symbols_);
  ASSERT_TRUE(tgd.ok());
  EXPECT_TRUE(tgd->body[0].terms[1].is_constant());
  EXPECT_TRUE(tgd->head[0].terms[1].is_constant());
  bool found = false;
  symbols_.LookupConstant("root", &found);
  EXPECT_TRUE(found);
}

TEST_F(ParserTest, ParsesMultipleStatements) {
  auto deps = ParseDependencies(
      "E(x,y) -> H(x,y).\n"
      "H(x,y) -> exists z: E(x,z).\n"
      "H(x,y) & H(x,z) -> y = z.",
      schema_, &symbols_);
  ASSERT_TRUE(deps.ok());
  EXPECT_EQ(deps->tgds.size(), 2u);
  EXPECT_EQ(deps->egds.size(), 1u);
}

TEST_F(ParserTest, CommentsAreIgnored) {
  auto deps = ParseDependencies(
      "# mapping from source to target\nE(x,y) -> H(x,y). # inline",
      schema_, &symbols_);
  ASSERT_TRUE(deps.ok());
  EXPECT_EQ(deps->tgds.size(), 1u);
}

TEST_F(ParserTest, EmptyProgramIsEmptySet) {
  auto deps = ParseDependencies("  \n# nothing\n", schema_, &symbols_);
  ASSERT_TRUE(deps.ok());
  EXPECT_TRUE(deps->empty());
}

TEST_F(ParserTest, RejectsUnknownRelation) {
  EXPECT_FALSE(ParseTgd("Z(x) -> H(x,x).", schema_, &symbols_).ok());
}

TEST_F(ParserTest, RejectsArityMismatch) {
  EXPECT_FALSE(ParseTgd("E(x) -> H(x,x).", schema_, &symbols_).ok());
}

TEST_F(ParserTest, RejectsExistentialInBody) {
  EXPECT_FALSE(
      ParseTgd("E(x,z) -> exists z: H(x,z).", schema_, &symbols_).ok());
}

TEST_F(ParserTest, RejectsGarbage) {
  EXPECT_FALSE(ParseTgd("E(x,y) H(x,y).", schema_, &symbols_).ok());
  EXPECT_FALSE(ParseTgd("-> H(x,y).", schema_, &symbols_).ok());
  EXPECT_FALSE(ParseTgd("E(x,y) ->", schema_, &symbols_).ok());
}

TEST_F(ParserTest, ParsesQuery) {
  auto query = ParseQuery("q(x,y) :- H(x,z) & H(z,y).", schema_, &symbols_);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->head_arity(), 2);
  EXPECT_EQ(query->body.size(), 2u);
  EXPECT_FALSE(query->IsBoolean());
}

TEST_F(ParserTest, ParsesBooleanQuery) {
  auto query = ParseQuery("q() :- H(x,x).", schema_, &symbols_);
  ASSERT_TRUE(query.ok());
  EXPECT_TRUE(query->IsBoolean());
}

TEST_F(ParserTest, ParsesHeadlessBooleanQuery) {
  auto query = ParseQuery("q :- H(x,y).", schema_, &symbols_);
  ASSERT_TRUE(query.ok());
  EXPECT_TRUE(query->IsBoolean());
}

TEST_F(ParserTest, RejectsHeadVariableNotInBody) {
  EXPECT_FALSE(ParseQuery("q(w) :- H(x,y).", schema_, &symbols_).ok());
}

TEST_F(ParserTest, ParsesUnionQuery) {
  auto query = ParseUnionQuery(
      "q(x) :- H(x,x).\nq(x) :- E(x,x).", schema_, &symbols_);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->disjuncts.size(), 2u);
}

TEST_F(ParserTest, RejectsUnionQueryWithMixedArity) {
  EXPECT_FALSE(ParseUnionQuery("q(x) :- H(x,x).\nq() :- E(x,x).", schema_,
                               &symbols_)
                   .ok());
}

TEST_F(ParserTest, ToStringRoundTripsThroughParser) {
  auto tgd = ParseTgd("H(x,y) -> exists z: E(x,z) & E(z,y).", schema_,
                      &symbols_);
  ASSERT_TRUE(tgd.ok());
  std::string rendered = tgd->ToString(schema_, symbols_);
  auto reparsed = ParseTgd(rendered + ".", schema_, &symbols_);
  ASSERT_TRUE(reparsed.ok()) << "failed to reparse: " << rendered;
  EXPECT_EQ(reparsed->ToString(schema_, symbols_), rendered);
}

}  // namespace
}  // namespace pdx
