// Ground-truth cross-validation: on tiny inputs, compare the generic
// solver against an exhaustive enumeration of candidate target instances.
// This covers settings *outside* condition 1 of Definition 9, where the
// Theorem 5 homomorphism algorithm is inapplicable and no other oracle
// exists in the suite.
//
// Solutions may require values outside adom(I, J) (witnesses of
// existential variables); any such value can be renamed to a fresh
// constant, so the enumeration draws from adom plus a small reserve of
// fresh constants. The reserve (2) exceeds the number of existential
// witnesses any minimal solution of these tiny inputs can need.

#include <functional>
#include <vector>

#include "gtest/gtest.h"
#include "pde/generic_solver.h"
#include "pde/solution.h"
#include "tests/test_util.h"
#include "workload/random.h"

namespace pdx {
namespace {

using testing_util::ParseOrDie;
using testing_util::Unwrap;

// Enumerates every target instance J' ⊇ J with at most `max_extra` facts
// beyond J, over the value pool, and reports whether any is a solution.
bool BruteForceHasSolution(const PdeSetting& setting, const Instance& source,
                           const Instance& target,
                           const std::vector<Value>& pool, int max_extra,
                           const SymbolTable& symbols) {
  // Candidate facts: every target relation × every tuple over the pool.
  std::vector<Fact> candidates;
  for (RelationId r = 0; r < setting.schema().relation_count(); ++r) {
    if (!setting.is_target(r)) continue;
    int arity = setting.schema().arity(r);
    std::vector<int> index(arity, 0);
    while (true) {
      Tuple tuple;
      for (int i = 0; i < arity; ++i) tuple.push_back(pool[index[i]]);
      if (!target.Contains(r, tuple)) {
        candidates.push_back(Fact{r, std::move(tuple)});
      }
      int pos = arity - 1;
      while (pos >= 0 &&
             ++index[pos] == static_cast<int>(pool.size())) {
        index[pos--] = 0;
      }
      if (pos < 0) break;
    }
  }
  // Enumerate subsets of size <= max_extra (combinations, smallest first).
  std::vector<int> chosen;
  std::function<bool(int, int)> search = [&](int start, int remaining) {
    Instance j_prime = target;
    for (int c : chosen) j_prime.AddFact(candidates[c]);
    if (IsSolution(setting, source, target, j_prime, symbols)) return true;
    if (remaining == 0) return false;
    for (int c = start; c < static_cast<int>(candidates.size()); ++c) {
      chosen.push_back(c);
      if (search(c + 1, remaining - 1)) return true;
      chosen.pop_back();
    }
    return false;
  };
  return search(0, max_extra);
}

struct BruteForceCase {
  const char* name;
  const char* sigma_st;
  const char* sigma_ts;
  const char* sigma_t;
};

// Settings chosen to violate condition 1 or otherwise sit outside the
// reach of the homomorphism algorithm.
constexpr BruteForceCase kCases[] = {
    // Condition 1 violated: marked variable z repeated in the ts LHS.
    {"RepeatedMarkedVariable",
     "E(x,y) -> exists z: T1(x,z) & T2(z,y).",
     "T1(x,z) & T2(z,y) -> E(x,y).", ""},
    // Condition 1 violated + a join on the marked position.
    {"MarkedJoin",
     "E(x,y) -> exists z: T1(x,z) & T2(z,x).",
     "T1(x,z) & T2(z,y) -> E(x,y).", ""},
    // Target egd interacting with ts checks.
    {"EgdPlusTs",
     "E(x,y) -> exists z: T1(x,z).",
     "T1(x,z) -> E(x,z).",
     "T1(x,y) & T1(x,z) -> y = z."},
    // Target tgd cascade with ts restriction.
    {"TargetCascade",
     "E(x,y) -> T1(x,y).",
     "T2(x,y) -> E(x,y).",
     "T1(x,y) -> T2(y,x)."},
};

class BruteForceTest
    : public ::testing::TestWithParam<std::tuple<BruteForceCase, uint64_t>> {
};

TEST_P(BruteForceTest, GenericSolverMatchesExhaustiveSearch) {
  const auto& [test_case, seed] = GetParam();
  SymbolTable symbols;
  auto setting = PdeSetting::Create({{"E", 2}}, {{"T1", 2}, {"T2", 2}},
                                    test_case.sigma_st, test_case.sigma_ts,
                                    test_case.sigma_t, &symbols);
  ASSERT_TRUE(setting.ok()) << setting.status().ToString();

  // Tiny random source instance over 2 constants (the exhaustive search
  // below is exponential in the candidate-fact count, so the domain must
  // stay minimal while max_extra stays generous enough for any minimal
  // solution: 2 edges x 2 facts each).
  Rng rng(seed);
  Instance source = setting->EmptyInstance();
  RelationId e = setting->schema().FindRelation("E").value();
  std::vector<Value> pool;
  for (int i = 0; i < 2; ++i) {
    pool.push_back(symbols.InternConstant("c" + std::to_string(i)));
  }
  int edges = 1 + rng.UniformInt(2);
  for (int i = 0; i < edges; ++i) {
    source.AddFact(e, {pool[rng.UniformInt(2)], pool[rng.UniformInt(2)]});
  }
  // Fresh-constant reserve for existential witnesses.
  pool.push_back(symbols.InternConstant("fresh0"));
  pool.push_back(symbols.InternConstant("fresh1"));

  Instance target = setting->EmptyInstance();
  bool expected = BruteForceHasSolution(*setting, source, target, pool,
                                        /*max_extra=*/4, symbols);

  GenericSolverOptions options;
  options.max_nodes = 500'000;
  GenericSolveResult result = Unwrap(GenericExistsSolution(
      *setting, source, target, &symbols, options));
  ASSERT_NE(result.outcome, SolveOutcome::kBudgetExhausted);
  EXPECT_EQ(result.outcome == SolveOutcome::kSolutionFound, expected)
      << "setting " << test_case.name << " seed " << seed << "\nI:\n"
      << source.ToString(symbols);
  if (result.outcome == SolveOutcome::kSolutionFound) {
    EXPECT_TRUE(
        IsSolution(*setting, source, target, *result.solution, symbols));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BruteForceTest,
    ::testing::Combine(::testing::ValuesIn(kCases),
                       ::testing::Range(uint64_t{1}, uint64_t{11})),
    [](const ::testing::TestParamInfo<std::tuple<BruteForceCase, uint64_t>>&
           info) {
      return std::string(std::get<0>(info.param).name) + "Seed" +
             std::to_string(std::get<1>(info.param));
    });

// With a pre-existing target instance J, the J ⊆ J' requirement interacts
// with the egd; cross-validate that path too.
class BruteForceWithTargetTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BruteForceWithTargetTest, GenericSolverMatchesExhaustiveSearch) {
  SymbolTable symbols;
  auto setting = PdeSetting::Create(
      {{"E", 2}}, {{"T1", 2}, {"T2", 2}},
      "E(x,y) -> exists z: T1(x,z).",
      "T1(x,z) -> E(x,z).",
      "T1(x,y) & T1(x,z) -> y = z.", &symbols);
  ASSERT_TRUE(setting.ok());
  Rng rng(GetParam());
  std::vector<Value> pool;
  for (int i = 0; i < 2; ++i) {
    pool.push_back(symbols.InternConstant("c" + std::to_string(i)));
  }
  Instance source = setting->EmptyInstance();
  RelationId e = setting->schema().FindRelation("E").value();
  RelationId t1 = setting->schema().FindRelation("T1").value();
  for (int i = 0; i < 2; ++i) {
    source.AddFact(e, {pool[rng.UniformInt(2)], pool[rng.UniformInt(2)]});
  }
  Instance target = setting->EmptyInstance();
  target.AddFact(t1, {pool[rng.UniformInt(2)], pool[rng.UniformInt(2)]});
  pool.push_back(symbols.InternConstant("fresh0"));
  pool.push_back(symbols.InternConstant("fresh1"));

  bool expected = BruteForceHasSolution(*setting, source, target, pool, 3,
                                        symbols);
  GenericSolveResult result = Unwrap(
      GenericExistsSolution(*setting, source, target, &symbols));
  ASSERT_NE(result.outcome, SolveOutcome::kBudgetExhausted);
  EXPECT_EQ(result.outcome == SolveOutcome::kSolutionFound, expected)
      << "seed " << GetParam() << "\nI:\n" << source.ToString(symbols)
      << "\nJ:\n" << target.ToString(symbols);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BruteForceWithTargetTest,
                         ::testing::Range(uint64_t{1}, uint64_t{16}));

}  // namespace
}  // namespace pdx
