#include "pde/certain_answers.h"

#include <set>

#include "gtest/gtest.h"
#include "logic/parser.h"
#include "tests/test_util.h"
#include "workload/reductions.h"

namespace pdx {
namespace {

using testing_util::MakeExample1Setting;
using testing_util::ParseOrDie;
using testing_util::Unwrap;

class CertainAnswersTest : public ::testing::Test {
 protected:
  CertainAnswersTest() : setting_(MakeExample1Setting(&symbols_)) {}

  UnionQuery Query(const char* text) {
    return Unwrap(ParseUnionQuery(text, setting_.schema(), &symbols_),
                  "query");
  }

  CertainAnswersResult Certain(const Instance& source,
                               const Instance& target,
                               const UnionQuery& query) {
    return Unwrap(ComputeCertainAnswers(setting_, source, target, query,
                                        &symbols_),
                  "ComputeCertainAnswers");
  }

  SymbolTable symbols_;
  PdeSetting setting_;
};

// The paper's example after Definition 4:
// certain(∃x,y,z H(x,y) ∧ H(y,z), ({E(a,a)}, ∅)) = true.
TEST_F(CertainAnswersTest, PaperExampleTrueCase) {
  Instance source = ParseOrDie(setting_, "E(a,a).", &symbols_);
  UnionQuery q = Query("q() :- H(x,y) & H(y,z).");
  CertainAnswersResult result =
      Certain(source, setting_.EmptyInstance(), q);
  EXPECT_FALSE(result.no_solution);
  EXPECT_TRUE(result.boolean_value);
}

// certain(q, ({E(a,b), E(b,c), E(a,c)}, ∅)) = false: the solution
// {H(a,c)} has no H-path of length 2.
TEST_F(CertainAnswersTest, PaperExampleFalseCase) {
  Instance source =
      ParseOrDie(setting_, "E(a,b). E(b,c). E(a,c).", &symbols_);
  UnionQuery q = Query("q() :- H(x,y) & H(y,z).");
  CertainAnswersResult result =
      Certain(source, setting_.EmptyInstance(), q);
  EXPECT_FALSE(result.no_solution);
  EXPECT_FALSE(result.boolean_value);
}

TEST_F(CertainAnswersTest, VacuouslyCertainWhenNoSolution) {
  Instance source = ParseOrDie(setting_, "E(a,b). E(b,c).", &symbols_);
  UnionQuery q = Query("q() :- H(x,y).");
  CertainAnswersResult result =
      Certain(source, setting_.EmptyInstance(), q);
  EXPECT_TRUE(result.no_solution);
  EXPECT_TRUE(result.boolean_value);
}

TEST_F(CertainAnswersTest, NonBooleanAnswersIntersectAcrossSolutions) {
  // All solutions contain H(a,c) (forced by Σ_st via a->b->c), but H(a,b)
  // holds only in some solutions.
  Instance source =
      ParseOrDie(setting_, "E(a,b). E(b,c). E(a,c).", &symbols_);
  UnionQuery q = Query("q(x,y) :- H(x,y).");
  CertainAnswersResult result =
      Certain(source, setting_.EmptyInstance(), q);
  Value a = symbols_.InternConstant("a");
  Value c = symbols_.InternConstant("c");
  ASSERT_EQ(result.answers.size(), 1u);
  EXPECT_EQ(result.answers[0], (Tuple{a, c}));
}

TEST_F(CertainAnswersTest, PreExistingTargetFactsAreCertain) {
  Instance source =
      ParseOrDie(setting_, "E(a,b). E(b,c). E(a,c).", &symbols_);
  Instance target = ParseOrDie(setting_, "H(a,b).", &symbols_);
  UnionQuery q = Query("q(x,y) :- H(x,y).");
  CertainAnswersResult result = Certain(source, target, q);
  EXPECT_EQ(result.answers.size(), 2u);  // H(a,b) from J, H(a,c) forced
}

TEST_F(CertainAnswersTest, RejectsQueriesOverSourceRelations) {
  Instance source = ParseOrDie(setting_, "E(a,a).", &symbols_);
  UnionQuery q = Query("q(x) :- E(x,x).");
  auto result = ComputeCertainAnswers(setting_, source,
                                      setting_.EmptyInstance(), q, &symbols_);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CertainAnswersTest, DataExchangeFastPath) {
  SymbolTable symbols;
  auto setting = Unwrap(PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}},
      "E(x,y) -> exists z: H(x,z).", "", "", &symbols));
  Instance source = testing_util::ParseOrDie(setting, "E(a,b).", &symbols);
  UnionQuery q = Unwrap(
      ParseUnionQuery("q(x) :- H(x,y).", setting.schema(), &symbols));
  CertainAnswersResult result = Unwrap(ComputeCertainAnswers(
      setting, source, setting.EmptyInstance(), q, &symbols));
  EXPECT_TRUE(result.used_data_exchange_fast_path);
  Value a = symbols.InternConstant("a");
  ASSERT_EQ(result.answers.size(), 1u);
  EXPECT_EQ(result.answers[0], (Tuple{a}));

  // q2 asks for the (null) second column: nothing is certain.
  UnionQuery q2 = Unwrap(
      ParseUnionQuery("q(y) :- H(x,y).", setting.schema(), &symbols));
  CertainAnswersResult result2 = Unwrap(ComputeCertainAnswers(
      setting, source, setting.EmptyInstance(), q2, &symbols));
  EXPECT_TRUE(result2.answers.empty());
}

// Theorem 3's coNP query: certain(∃x P(x,x,x,x)) is false iff G has a
// k-clique.
TEST_F(CertainAnswersTest, CliqueCertainQueryTracksCliqueExistence) {
  SymbolTable symbols;
  PdeSetting setting = Unwrap(MakeCliqueSetting(&symbols));
  UnionQuery q = Unwrap(MakeCliqueCertainQuery(setting, &symbols));

  Instance with_clique =
      MakeCliqueSourceInstance(setting, CompleteGraph(3), 3, &symbols);
  CertainAnswersResult yes = Unwrap(ComputeCertainAnswers(
      setting, with_clique, setting.EmptyInstance(), q, &symbols));
  EXPECT_FALSE(yes.no_solution);
  EXPECT_FALSE(yes.boolean_value);  // some solution avoids P(x,x,x,x)

  Instance without_clique =
      MakeCliqueSourceInstance(setting, PathGraph(4), 3, &symbols);
  CertainAnswersResult no = Unwrap(ComputeCertainAnswers(
      setting, without_clique, setting.EmptyInstance(), q, &symbols));
  EXPECT_TRUE(no.no_solution);
  EXPECT_TRUE(no.boolean_value);  // vacuously certain
}

TEST_F(CertainAnswersTest, LowerBoundIsSoundOnPaperExamples) {
  Instance source =
      ParseOrDie(setting_, "E(a,b). E(b,c). E(a,c).", &symbols_);
  UnionQuery q = Query("q(x,y) :- H(x,y).");
  CertainAnswersResult exact =
      Certain(source, setting_.EmptyInstance(), q);
  CertainLowerBoundResult lower =
      testing_util::Unwrap(ComputeCertainAnswersLowerBound(
          setting_, source, setting_.EmptyInstance(), q, &symbols_));
  // Here Σ_st is full, so J_can is exactly the least solution core and
  // the bound is tight.
  EXPECT_EQ(lower.answers, exact.answers);

  UnionQuery boolean_q = Query("q() :- H(x,y) & H(y,z).");
  CertainLowerBoundResult lb_true =
      testing_util::Unwrap(ComputeCertainAnswersLowerBound(
          setting_, ParseOrDie(setting_, "E(a,a).", &symbols_),
          setting_.EmptyInstance(), boolean_q, &symbols_));
  EXPECT_TRUE(lb_true.boolean_value);
}

// Property sweep: the PTIME lower bound never claims a non-certain answer.
TEST_F(CertainAnswersTest, LowerBoundSubsetOfExactOnRandomInstances) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SymbolTable symbols;
    auto setting = testing_util::Unwrap(PdeSetting::Create(
        {{"E", 2}}, {{"H", 2}},
        "E(x,y) -> exists z: H(x,z).",
        "H(x,y) -> E(x,y).", "", &symbols));
    // Random small E graphs.
    Instance source = setting.EmptyInstance();
    RelationId e = setting.schema().FindRelation("E").value();
    Rng rng(seed);
    for (int i = 0; i < 6; ++i) {
      source.AddFact(e, {symbols.InternConstant(
                             "c" + std::to_string(rng.UniformInt(4))),
                         symbols.InternConstant(
                             "c" + std::to_string(rng.UniformInt(4)))});
    }
    UnionQuery q = testing_util::Unwrap(
        ParseUnionQuery("q(x,y) :- H(x,y).", setting.schema(), &symbols));
    auto exact = ComputeCertainAnswers(setting, source,
                                       setting.EmptyInstance(), q, &symbols);
    ASSERT_TRUE(exact.ok());
    auto lower = ComputeCertainAnswersLowerBound(
        setting, source, setting.EmptyInstance(), q, &symbols);
    ASSERT_TRUE(lower.ok());
    if (exact->no_solution) continue;  // vacuous; bound trivially sound
    std::set<Tuple> exact_set(exact->answers.begin(), exact->answers.end());
    for (const Tuple& t : lower->answers) {
      EXPECT_TRUE(exact_set.count(t) > 0)
          << "lower bound produced a non-certain answer on seed " << seed;
    }
  }
}

TEST_F(CertainAnswersTest, BudgetExhaustionSurfacesAsError) {
  Instance source =
      ParseOrDie(setting_, "E(a,b). E(b,c). E(a,c).", &symbols_);
  GenericSolverOptions options;
  options.max_nodes = 1;
  UnionQuery q = Query("q() :- H(x,y).");
  auto result = ComputeCertainAnswers(
      setting_, source, setting_.EmptyInstance(), q, &symbols_, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace pdx
