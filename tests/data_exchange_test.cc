#include "pde/data_exchange.h"

#include "gtest/gtest.h"
#include "logic/parser.h"
#include "pde/solution.h"
#include "tests/test_util.h"

namespace pdx {
namespace {

using testing_util::ParseOrDie;
using testing_util::Unwrap;

TEST(DataExchangeTest, SolutionsAlwaysExistWithoutTargetConstraints) {
  // The paper's contrast (Section 2): in data exchange with Σ_t = ∅ a
  // solution always exists; peer data exchange loses that property.
  SymbolTable symbols;
  auto setting = Unwrap(PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}},
      "E(x,z) & E(z,y) -> H(x,y).", "", "", &symbols));
  Instance source = ParseOrDie(setting, "E(a,b). E(b,c).", &symbols);
  DataExchangeResult result = Unwrap(
      SolveDataExchange(setting, source, setting.EmptyInstance(), &symbols));
  EXPECT_TRUE(result.has_solution);
  EXPECT_TRUE(IsSolution(setting, source, setting.EmptyInstance(),
                         *result.universal_solution, symbols));
}

TEST(DataExchangeTest, UniversalSolutionCarriesNullsForExistentials) {
  SymbolTable symbols;
  auto setting = Unwrap(PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}},
      "E(x,y) -> exists z: H(x,z).", "", "", &symbols));
  Instance source = ParseOrDie(setting, "E(a,b).", &symbols);
  DataExchangeResult result = Unwrap(
      SolveDataExchange(setting, source, setting.EmptyInstance(), &symbols));
  ASSERT_TRUE(result.has_solution);
  EXPECT_TRUE(result.universal_solution->HasNulls());
  EXPECT_EQ(result.nulls_created, 1);
}

TEST(DataExchangeTest, EgdFailureMeansNoSolution) {
  SymbolTable symbols;
  auto setting = Unwrap(PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}},
      "E(x,y) -> H(x,y).", "",
      "H(x,y) & H(x,z) -> y = z.", &symbols));
  Instance source = ParseOrDie(setting, "E(a,b). E(a,c).", &symbols);
  DataExchangeResult result = Unwrap(
      SolveDataExchange(setting, source, setting.EmptyInstance(), &symbols));
  EXPECT_FALSE(result.has_solution);
}

TEST(DataExchangeTest, TargetTgdsChaseThrough) {
  SymbolTable symbols;
  auto setting = Unwrap(PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}, {"F", 2}},
      "E(x,y) -> H(x,y).", "",
      "H(x,y) -> exists z: F(y,z).", &symbols));
  Instance source = ParseOrDie(setting, "E(a,b).", &symbols);
  DataExchangeResult result = Unwrap(
      SolveDataExchange(setting, source, setting.EmptyInstance(), &symbols));
  ASSERT_TRUE(result.has_solution);
  RelationId f = setting.schema().FindRelation("F").value();
  EXPECT_EQ(result.universal_solution->tuples(f).size(), 1u);
}

TEST(DataExchangeTest, RejectsPdeSettings) {
  SymbolTable symbols;
  auto setting = Unwrap(PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}},
      "E(x,y) -> H(x,y).", "H(x,y) -> E(x,y).", "", &symbols));
  Instance source = ParseOrDie(setting, "E(a,b).", &symbols);
  auto result =
      SolveDataExchange(setting, source, setting.EmptyInstance(), &symbols);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DataExchangeTest, CertainAnswersViaUniversalSolution) {
  SymbolTable symbols;
  auto setting = Unwrap(PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}},
      "E(x,z) & E(z,y) -> H(x,y).", "", "", &symbols));
  Instance source = ParseOrDie(setting, "E(a,b). E(b,c).", &symbols);
  UnionQuery q = Unwrap(
      ParseUnionQuery("q(x,y) :- H(x,y).", setting.schema(), &symbols));
  std::vector<Tuple> answers = Unwrap(DataExchangeCertainAnswers(
      setting, source, setting.EmptyInstance(), q, &symbols));
  Value a = symbols.InternConstant("a");
  Value c = symbols.InternConstant("c");
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0], (Tuple{a, c}));
}

TEST(DataExchangeTest, CertainAnswersDropNullJoins) {
  SymbolTable symbols;
  auto setting = Unwrap(PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}},
      "E(x,y) -> exists z: H(x,z).", "", "", &symbols));
  Instance source = ParseOrDie(setting, "E(a,b). E(c,d).", &symbols);
  // Second columns are distinct nulls: q(x,y) :- H(x,z) & H(y,z) should
  // certify only the reflexive pairs.
  UnionQuery q = Unwrap(ParseUnionQuery("q(x,y) :- H(x,z) & H(y,z).",
                                        setting.schema(), &symbols));
  std::vector<Tuple> answers = Unwrap(DataExchangeCertainAnswers(
      setting, source, setting.EmptyInstance(), q, &symbols));
  EXPECT_EQ(answers.size(), 2u);  // (a,a) and (c,c)
}

TEST(DataExchangeTest, CertainAnswersFailCleanlyWithoutSolution) {
  SymbolTable symbols;
  auto setting = Unwrap(PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}},
      "E(x,y) -> H(x,y).", "",
      "H(x,y) & H(x,z) -> y = z.", &symbols));
  Instance source = ParseOrDie(setting, "E(a,b). E(a,c).", &symbols);
  UnionQuery q = Unwrap(
      ParseUnionQuery("q(x,y) :- H(x,y).", setting.schema(), &symbols));
  auto answers = DataExchangeCertainAnswers(
      setting, source, setting.EmptyInstance(), q, &symbols);
  EXPECT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace pdx
