#include "chase/stream.h"

#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "chase/chase.h"
#include "logic/conjunctive_query.h"
#include "logic/parser.h"
#include "pde/certain_answers.h"
#include "pde/generic_solver.h"
#include "tests/test_util.h"
#include "workload/churn.h"
#include "workload/random.h"

namespace pdx {
namespace {

using testing_util::AssertHomEquivalent;
using testing_util::CanonicalizedFingerprint;
using testing_util::SchedulesToTest;
using testing_util::Unwrap;

// The differential harness for deletion propagation: every ±Δ batch a
// StreamingChase absorbs must leave it equivalent (canonicalized
// fingerprint — isomorphism up to null renaming) to a from-scratch
// restricted chase of the net base instance, across every schedule ×
// thread count × compile mode, and must never spend more chase steps than
// the from-scratch run it replaces.

class StreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.AddRelation("E", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("H", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("F", 2).ok());
    e_ = schema_.FindRelation("E").value();
    h_ = schema_.FindRelation("H").value();
    f_ = schema_.FindRelation("F").value();
    a_ = symbols_.InternConstant("a");
    b_ = symbols_.InternConstant("b");
    c_ = symbols_.InternConstant("c");
    d_ = symbols_.InternConstant("d");
  }

  std::vector<Tgd> ParseTgds(const char* text) {
    auto deps = ParseDependencies(text, schema_, &symbols_);
    EXPECT_TRUE(deps.ok()) << deps.status().ToString();
    return std::move(deps).value().tgds;
  }

  std::vector<Egd> ParseEgds(const char* text) {
    auto deps = ParseDependencies(text, schema_, &symbols_);
    EXPECT_TRUE(deps.ok()) << deps.status().ToString();
    return std::move(deps).value().egds;
  }

  // A deterministic E-fact universe: edges of a circulant-ish graph on
  // `nodes` vertices, deduped, in a stable order.
  std::vector<Fact> EdgeUniverse(int nodes) {
    std::vector<Fact> universe;
    Rng rng(2026);
    for (int u = 0; u < nodes; ++u) {
      for (int stride : {1, 3, 7}) {
        int v = (u + stride) % nodes;
        Value vu = symbols_.InternConstant("n" + std::to_string(u));
        Value vv = symbols_.InternConstant("n" + std::to_string(v));
        universe.push_back({e_, Tuple{vu, vv}});
      }
      // A sprinkle of random chords so deletions sometimes leave
      // alternative derivations alive (the over-deletion regime).
      int w = static_cast<int>(rng.UniformInt(static_cast<uint32_t>(nodes)));
      if (w != u) {
        Value vu = symbols_.InternConstant("n" + std::to_string(u));
        Value vw = symbols_.InternConstant("n" + std::to_string(w));
        universe.push_back({e_, Tuple{vu, vw}});
      }
    }
    std::sort(universe.begin(), universe.end());
    universe.erase(std::unique(universe.begin(), universe.end()),
                   universe.end());
    return universe;
  }

  ChaseOptions Options(ChaseSchedule schedule, int threads, bool compiled) {
    ChaseOptions options;
    options.schedule = schedule;
    options.num_threads = threads;
    options.compile_plans = compiled;
    return options;
  }

  Schema schema_;
  SymbolTable symbols_;
  RelationId e_ = 0, h_ = 0, f_ = 0;
  Value a_, b_, c_, d_;
};

TEST_F(StreamTest, InitializeChasesToFixpoint) {
  std::vector<Tgd> tgds =
      ParseTgds("E(x,z) & E(z,y) -> H(x,y). H(x,y) -> exists w: F(y,w).");
  Instance base(&schema_);
  base.AddFact(e_, {a_, b_});
  base.AddFact(e_, {b_, c_});
  StreamingChase stream(&schema_, tgds, {}, &symbols_);
  ASSERT_TRUE(stream.Initialize(base).ok());
  EXPECT_TRUE(stream.initialized());
  EXPECT_TRUE(stream.instance().Contains(h_, {a_, c_}));
  EXPECT_EQ(stream.instance().tuples(f_).size(), 1u);
  EXPECT_GT(stream.total_steps(), 0);
  EXPECT_GT(stream.journal().live_count(), 0u);
}

TEST_F(StreamTest, RejectsNonRestrictedStrategy) {
  ChaseOptions options;
  options.strategy = ChaseStrategy::kOblivious;
  StreamingChase stream(&schema_, {}, {}, &symbols_, options);
  Instance base(&schema_);
  EXPECT_EQ(stream.Initialize(base).code(), StatusCode::kInvalidArgument);
}

// The tentpole invariant. For every schedule × {1, 2, 8} threads ×
// {compiled, interpreted}: run a churn stream through ResumeWithDeltas and
// after every batch compare against a from-scratch chase of the net
// instance — canonicalized fingerprints equal (the workload is tgd-only,
// hence confluent up to null renaming) and incremental steps within the
// from-scratch budget.
TEST_F(StreamTest, DifferentialChurnMatchesFromScratchAcrossMatrix) {
  std::vector<Tgd> tgds =
      ParseTgds("E(x,z) & E(z,y) -> H(x,y). H(x,y) -> exists w: F(y,w).");
  std::vector<Fact> universe = EdgeUniverse(18);
  const size_t initially_live = universe.size() * 2 / 3;

  for (ChaseSchedule schedule : SchedulesToTest()) {
    for (int threads : {1, 2, 8}) {
      for (bool compiled : {false, true}) {
        SCOPED_TRACE("schedule=" + std::to_string(static_cast<int>(schedule)) +
                     " threads=" + std::to_string(threads) +
                     " compiled=" + std::to_string(compiled));
        ChaseOptions options = Options(schedule, threads, compiled);

        ChurnOptions churn_options;
        churn_options.delete_rate = 0.15;
        churn_options.insert_rate = 0.12;
        churn_options.overlap = 0.4;
        churn_options.seed = 7;
        ChurnStream churn(universe, initially_live, churn_options);

        StreamingChase stream(&schema_, tgds, {}, &symbols_, options);
        ASSERT_TRUE(stream.Initialize(churn.NetInstance(&schema_)).ok());

        for (int batch_idx = 0; batch_idx < 5; ++batch_idx) {
          ChurnBatch batch = churn.Next();
          StatusOr<StreamStats> stats =
              stream.ResumeWithDeltas(batch.adds, batch.deletes);
          ASSERT_TRUE(stats.ok()) << stats.status().ToString();

          Instance net = churn.NetInstance(&schema_);
          ChaseResult scratch = Chase(net, tgds, {}, &symbols_, options);
          ASSERT_EQ(scratch.outcome, ChaseOutcome::kSuccess);

          // The incremental base tracks the net live set exactly.
          EXPECT_EQ(CanonicalizedFingerprint(stream.base()),
                    CanonicalizedFingerprint(net))
              << "batch " << batch_idx;
          // Incremental re-solve ≡ from-scratch re-chase.
          EXPECT_EQ(CanonicalizedFingerprint(stream.instance()),
                    CanonicalizedFingerprint(scratch.instance))
              << "batch " << batch_idx;
          // Steps in bounds: a ±Δ batch never costs more than the
          // from-scratch chase it replaces.
          EXPECT_LE(stats.value().steps, scratch.steps)
              << "batch " << batch_idx;
        }
      }
    }
  }
}

// Support counting: a fact justified by the base survives losing a derived
// justification, and vice versa.
TEST_F(StreamTest, BaseJustifiedFactSurvivesDerivationDeath) {
  std::vector<Tgd> tgds = ParseTgds("E(x,z) & E(z,y) -> H(x,y).");
  Instance base(&schema_);
  base.AddFact(e_, {a_, b_});
  base.AddFact(e_, {b_, c_});
  base.AddFact(h_, {a_, c_});  // admitted directly, also derivable
  StreamingChase stream(&schema_, tgds, {}, &symbols_);
  ASSERT_TRUE(stream.Initialize(base).ok());

  // Kill the derivation path; the admitted copy keeps H(a,c) alive.
  StatusOr<StreamStats> stats =
      stream.ResumeWithDeltas({}, {{e_, Tuple{b_, c_}}});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stream.instance().Contains(h_, {a_, c_}));

  // Now retract the admitted copy too: with E(b,c) gone there is no
  // surviving justification left.
  stats = stream.ResumeWithDeltas({}, {{h_, Tuple{a_, c_}}});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_FALSE(stream.instance().Contains(h_, {a_, c_}));
}

// Over-deletion repair: the restricted chase fires only one of two
// alternative derivations (the second trigger is satisfied); deleting the
// fired body must re-derive the fact through the dormant alternative.
TEST_F(StreamTest, OverDeletionRederivesThroughAlternativePath) {
  std::vector<Tgd> tgds = ParseTgds("E(x,z) & E(z,y) -> H(x,y).");
  Instance base(&schema_);
  base.AddFact(e_, {a_, b_});
  base.AddFact(e_, {b_, c_});
  base.AddFact(e_, {a_, d_});
  base.AddFact(e_, {d_, c_});
  StreamingChase stream(&schema_, tgds, {}, &symbols_);
  ASSERT_TRUE(stream.Initialize(base).ok());
  ASSERT_TRUE(stream.instance().Contains(h_, {a_, c_}));

  // Whichever path fired, deleting one of its middle hops leaves the
  // other path as the only (or still-journaled) justification.
  StatusOr<StreamStats> stats =
      stream.ResumeWithDeltas({}, {{e_, Tuple{b_, c_}}});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stream.instance().Contains(h_, {a_, c_}));

  stats = stream.ResumeWithDeltas({}, {{e_, Tuple{d_, c_}}});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_FALSE(stream.instance().Contains(h_, {a_, c_}))
      << "no path a→·→c remains";
}

// Cascade: retracting a root removes the whole unsupported consequence
// chain, and counts it.
TEST_F(StreamTest, CascadeRemovesUnsupportedConsequences) {
  std::vector<Tgd> tgds = ParseTgds("E(x,y) -> H(x,y). H(x,y) -> F(x,y).");
  Instance base(&schema_);
  base.AddFact(e_, {a_, b_});
  StreamingChase stream(&schema_, tgds, {}, &symbols_);
  ASSERT_TRUE(stream.Initialize(base).ok());
  ASSERT_TRUE(stream.instance().Contains(f_, {a_, b_}));

  StatusOr<StreamStats> stats =
      stream.ResumeWithDeltas({}, {{e_, Tuple{a_, b_}}});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().base_removed, 1);
  EXPECT_EQ(stats.value().retracted, 3);  // E(a,b), H(a,b), F(a,b)
  EXPECT_EQ(stats.value().dead_triggers, 2);
  EXPECT_EQ(stream.instance().ResolvedFactCount(), 0u);

  // Deleting absent or derived-only facts is a no-op, not an error.
  stats = stream.ResumeWithDeltas({}, {{e_, Tuple{a_, b_}}});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().base_removed, 0);
  EXPECT_EQ(stats.value().retracted, 0);
}

// Ledger consistency under retraction: delete → re-insert must re-fire the
// trigger exactly once (its fingerprint retired with the killed entry).
TEST_F(StreamTest, DeleteThenReinsertRefiresTrigger) {
  std::vector<Tgd> tgds = ParseTgds("E(x,y) -> exists z: H(x,z).");
  Instance base(&schema_);
  base.AddFact(e_, {a_, b_});
  StreamingChase stream(&schema_, tgds, {}, &symbols_);
  ASSERT_TRUE(stream.Initialize(base).ok());
  ASSERT_EQ(stream.instance().tuples(h_).size(), 1u);

  StatusOr<StreamStats> stats =
      stream.ResumeWithDeltas({}, {{e_, Tuple{a_, b_}}});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stream.instance().tuples(h_).size(), 0u);

  stats = stream.ResumeWithDeltas({{e_, Tuple{a_, b_}}}, {});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats.value().steps, 1);
  EXPECT_TRUE(stream.instance().Contains(e_, {a_, b_}));
  ASSERT_EQ(stream.instance().tuples(h_).size(), 1u);
  EXPECT_TRUE(stream.instance().tuples(h_)[0][1].is_null());

  // Re-adding a fact already present is absorbed without a firing.
  stats = stream.ResumeWithDeltas({{e_, Tuple{a_, b_}}}, {});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().steps, 0);
  EXPECT_EQ(stream.instance().tuples(h_).size(), 1u);
}

// A retraction that kills an egd firing cannot un-merge the union-find;
// the batch must fall back to one full re-chase of the net base — and the
// stream must stay fully usable afterwards.
TEST_F(StreamTest, DeadEgdTriggerFallsBackToFullRechase) {
  std::vector<Tgd> tgds = ParseTgds("E(x,y) -> exists w: H(x,w).");
  std::vector<Egd> egds = ParseEgds("H(x,y) & F(x,z) -> y = z.");
  Instance base(&schema_);
  base.AddFact(e_, {a_, b_});
  base.AddFact(f_, {a_, c_});
  StreamingChase stream(&schema_, tgds, egds, &symbols_);
  ASSERT_TRUE(stream.Initialize(base).ok());
  // The fresh null of H(a,w) merged into c.
  EXPECT_TRUE(stream.instance().Contains(h_, {a_, c_}));

  StatusOr<StreamStats> stats =
      stream.ResumeWithDeltas({}, {{f_, Tuple{a_, c_}}});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats.value().fell_back);
  EXPECT_GE(stats.value().dead_triggers, 1);
  EXPECT_EQ(stream.instance().tuples(f_).size(), 0u);
  ASSERT_EQ(stream.instance().tuples(h_).size(), 1u);
  EXPECT_TRUE(stream.instance().tuples(h_)[0][1].is_null())
      << "the merge target is gone, the existential is a null again";

  // Post-fallback state is a normal streaming state: the merge re-forms
  // when the fact returns.
  stats = stream.ResumeWithDeltas({{f_, Tuple{a_, c_}}}, {});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_FALSE(stats.value().fell_back);
  EXPECT_TRUE(stream.instance().Contains(h_, {a_, c_}));
}

// A batch whose adds clash on an egd rolls back wholesale: instances,
// watermark, journal — byte-for-byte the pre-batch state.
TEST_F(StreamTest, FailedBatchRollsBackWholesale) {
  std::vector<Tgd> tgds = ParseTgds("E(x,y) -> H(x,y).");
  std::vector<Egd> egds = ParseEgds("H(x,y) & H(x,z) -> y = z.");
  Instance base(&schema_);
  base.AddFact(e_, {a_, b_});
  StreamingChase stream(&schema_, tgds, egds, &symbols_);
  ASSERT_TRUE(stream.Initialize(base).ok());
  const uint64_t before = CanonicalizedFingerprint(stream.instance());
  const size_t live_before = stream.journal().live_count();
  const int64_t steps_before = stream.total_steps();

  // E(a,c) derives H(a,c); the egd then demands b = c — a clash.
  StatusOr<StreamStats> stats =
      stream.ResumeWithDeltas({{e_, Tuple{a_, c_}}}, {});
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(CanonicalizedFingerprint(stream.instance()), before);
  EXPECT_FALSE(stream.base().Contains(e_, {a_, c_}));
  EXPECT_EQ(stream.journal().live_count(), live_before);
  EXPECT_EQ(stream.total_steps(), steps_before);

  // The stream still accepts compatible batches afterwards.
  stats = stream.ResumeWithDeltas({{e_, Tuple{c_, d_}}}, {});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stream.instance().Contains(h_, {c_, d_}));
}

// A mixed batch applies deletes before adds: retract-and-re-add of the
// same fact in ONE batch leaves it present (the serving layer's coalescing
// contract).
TEST_F(StreamTest, MixedBatchAppliesDeletesBeforeAdds) {
  std::vector<Tgd> tgds = ParseTgds("E(x,y) -> exists z: H(x,z).");
  Instance base(&schema_);
  base.AddFact(e_, {a_, b_});
  StreamingChase stream(&schema_, tgds, {}, &symbols_);
  ASSERT_TRUE(stream.Initialize(base).ok());

  StatusOr<StreamStats> stats = stream.ResumeWithDeltas(
      {{e_, Tuple{a_, b_}}, {e_, Tuple{c_, d_}}}, {{e_, Tuple{a_, b_}}});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stream.base().Contains(e_, {a_, b_}));
  EXPECT_TRUE(stream.base().Contains(e_, {c_, d_}));
  EXPECT_EQ(stream.instance().tuples(h_).size(), 2u);
}

// PDE-level incremental re-answer: retracting a source fact flips
// ExistsSolution from true to false; re-adding it revalidates the cached
// witness in PTIME instead of re-running the search.
TEST_F(StreamTest, DeletionBreaksExistenceAndWitnessRevalidates) {
  SymbolTable symbols;
  PdeSetting setting = testing_util::MakePathSetting(&symbols);
  const Schema& schema = setting.schema();
  RelationId e = schema.FindRelation("E").value();
  RelationId h = schema.FindRelation("H").value();
  Value a = symbols.InternConstant("a");
  Value b = symbols.InternConstant("b");
  Value c = symbols.InternConstant("c");

  // The source lives in a dependency-free stream: ResumeWithDeltas is the
  // single write path, exactly as in pdxd.
  StreamingChase source(&schema, {}, {}, &symbols);
  Instance base(&schema);
  base.AddFact(e, {a, b});
  base.AddFact(e, {b, c});
  ASSERT_TRUE(source.Initialize(base).ok());

  Instance target(&schema);
  target.AddFact(h, {a, c});

  GenericSolverOptions solver_options;
  IncrementalSolveResult first = Unwrap(GenericExistsSolutionIncremental(
      setting, source.instance(), target, nullptr, &symbols, solver_options));
  ASSERT_EQ(first.result.outcome, SolveOutcome::kSolutionFound);
  EXPECT_FALSE(first.revalidated);
  ASSERT_TRUE(first.result.solution.has_value());

  // Retract E(b,c): H(a,c) ∈ J now demands a path a→·→c that the fixed
  // source can no longer provide — no solution exists.
  ASSERT_TRUE(source.ResumeWithDeltas({}, {{e, Tuple{b, c}}}).ok());
  IncrementalSolveResult broken = Unwrap(GenericExistsSolutionIncremental(
      setting, source.instance(), target, &*first.result.solution, &symbols,
      solver_options));
  EXPECT_EQ(broken.result.outcome, SolveOutcome::kNoSolution);
  EXPECT_FALSE(broken.revalidated);

  // Restore the path: the old witness is a solution again, so the
  // incremental path revalidates without searching.
  ASSERT_TRUE(source.ResumeWithDeltas({{e, Tuple{b, c}}}, {}).ok());
  IncrementalSolveResult restored = Unwrap(GenericExistsSolutionIncremental(
      setting, source.instance(), target, &*first.result.solution, &symbols,
      solver_options));
  EXPECT_EQ(restored.result.outcome, SolveOutcome::kSolutionFound);
  EXPECT_TRUE(restored.revalidated);
}

// Certain-answer differential under churn: the stream's instance is J_can
// of the net source, so the null-free answers of a query over it must
// equal the from-scratch certain-answer lower bound after every batch.
TEST_F(StreamTest, CertainLowerBoundMatchesFromScratchUnderChurn) {
  SymbolTable symbols;
  PdeSetting setting = Unwrap(
      PdeSetting::Create({{"E", 2}}, {{"H", 2}},
                         "E(x,z) & E(z,y) -> H(x,y).", "", "", &symbols),
      "data exchange setting");
  const Schema& schema = setting.schema();
  RelationId e = schema.FindRelation("E").value();
  UnionQuery query =
      Unwrap(ParseUnionQuery("q(x,y) :- H(x,y).", schema, &symbols));

  std::vector<Fact> universe;
  for (int u = 0; u < 12; ++u) {
    for (int stride : {1, 2, 5}) {
      Value vu = symbols.InternConstant("m" + std::to_string(u));
      Value vv = symbols.InternConstant("m" + std::to_string((u + stride) % 12));
      universe.push_back({e, Tuple{vu, vv}});
    }
  }
  std::sort(universe.begin(), universe.end());
  universe.erase(std::unique(universe.begin(), universe.end()),
                 universe.end());

  ChurnOptions churn_options;
  churn_options.delete_rate = 0.2;
  churn_options.insert_rate = 0.15;
  churn_options.seed = 11;
  ChurnStream churn(universe, universe.size() * 3 / 4, churn_options);

  StreamingChase stream(&schema, setting.st_tgds(), {}, &symbols);
  ASSERT_TRUE(stream.Initialize(churn.NetInstance(&schema)).ok());

  Instance empty_target(&schema);
  for (int batch_idx = 0; batch_idx < 4; ++batch_idx) {
    ChurnBatch batch = churn.Next();
    ASSERT_TRUE(stream.ResumeWithDeltas(batch.adds, batch.deletes).ok());

    std::vector<Tuple> incremental =
        EvaluateUnionQueryNullFree(query, stream.instance());
    CertainLowerBoundResult scratch =
        Unwrap(ComputeCertainAnswersLowerBound(setting,
                                               churn.NetInstance(&schema),
                                               empty_target, query, &symbols));
    std::sort(incremental.begin(), incremental.end());
    std::sort(scratch.answers.begin(), scratch.answers.end());
    EXPECT_EQ(incremental, scratch.answers) << "batch " << batch_idx;
  }
}

}  // namespace
}  // namespace pdx
