#include "pde/setting.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace pdx {
namespace {

using testing_util::MakeExample1Setting;
using testing_util::ParseOrDie;

TEST(SettingTest, CreateBuildsCombinedSchema) {
  SymbolTable symbols;
  PdeSetting setting = MakeExample1Setting(&symbols);
  EXPECT_EQ(setting.schema().relation_count(), 2);
  EXPECT_EQ(setting.source_relation_count(), 1);
  EXPECT_EQ(setting.target_relation_count(), 1);
  RelationId e = setting.schema().FindRelation("E").value();
  RelationId h = setting.schema().FindRelation("H").value();
  EXPECT_TRUE(setting.is_source(e));
  EXPECT_TRUE(setting.is_target(h));
  EXPECT_EQ(setting.st_tgds().size(), 1u);
  EXPECT_EQ(setting.ts_tgds().size(), 1u);
  EXPECT_FALSE(setting.HasTargetConstraints());
  EXPECT_FALSE(setting.IsDataExchange());
}

TEST(SettingTest, RejectsWrongSidedDependencies) {
  SymbolTable symbols;
  // Σ_st head over the source schema.
  EXPECT_FALSE(PdeSetting::Create({{"E", 2}}, {{"H", 2}},
                                  "E(x,y) -> E(y,x).", "", "", &symbols)
                   .ok());
  // Σ_ts body over the source schema.
  EXPECT_FALSE(PdeSetting::Create({{"E", 2}}, {{"H", 2}}, "",
                                  "E(x,y) -> E(y,x).", "", &symbols)
                   .ok());
  // Σ_t mentioning a source relation.
  EXPECT_FALSE(PdeSetting::Create({{"E", 2}}, {{"H", 2}}, "", "",
                                  "H(x,y) -> E(x,y).", &symbols)
                   .ok());
  // Egds are not allowed in Σ_st or Σ_ts.
  EXPECT_FALSE(PdeSetting::Create({{"E", 2}}, {{"H", 2}},
                                  "E(x,y) & E(x,z) -> y = z.", "", "",
                                  &symbols)
                   .ok());
}

TEST(SettingTest, RejectsOverlappingSchemas) {
  SymbolTable symbols;
  EXPECT_FALSE(
      PdeSetting::Create({{"E", 2}}, {{"E", 2}}, "", "", "", &symbols).ok());
}

TEST(SettingTest, DataExchangeDetection) {
  SymbolTable symbols;
  auto setting = PdeSetting::Create({{"E", 2}}, {{"H", 2}},
                                    "E(x,y) -> H(x,y).", "", "", &symbols);
  ASSERT_TRUE(setting.ok());
  EXPECT_TRUE(setting->IsDataExchange());
}

TEST(SettingTest, TargetWeakAcyclicityIsTracked) {
  SymbolTable symbols;
  auto acyclic = PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}, {"F", 2}}, "E(x,y) -> H(x,y).", "",
      "H(x,y) -> exists z: F(y,z).", &symbols);
  ASSERT_TRUE(acyclic.ok());
  EXPECT_TRUE(acyclic->TargetTgdsWeaklyAcyclic());

  SymbolTable symbols2;
  auto cyclic = PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}}, "E(x,y) -> H(x,y).", "",
      "H(x,y) -> exists z: H(y,z).", &symbols2);
  ASSERT_TRUE(cyclic.ok());
  EXPECT_FALSE(cyclic->TargetTgdsWeaklyAcyclic());
}

TEST(SettingTest, InstanceValidation) {
  SymbolTable symbols;
  PdeSetting setting = MakeExample1Setting(&symbols);
  Instance source = ParseOrDie(setting, "E(a,b).", &symbols);
  Instance target = ParseOrDie(setting, "H(a,b).", &symbols);
  EXPECT_TRUE(setting.ValidateSourceInstance(source).ok());
  EXPECT_FALSE(setting.ValidateSourceInstance(target).ok());
  EXPECT_TRUE(setting.ValidateTargetInstance(target).ok());
  EXPECT_FALSE(setting.ValidateTargetInstance(source).ok());
  // Source instances must be ground.
  Instance with_null = ParseOrDie(setting, "E(a,_n).", &symbols);
  EXPECT_FALSE(setting.ValidateSourceInstance(with_null).ok());
  EXPECT_TRUE(setting.ValidateTargetInstance(
      ParseOrDie(setting, "H(a,_n).", &symbols)).ok());
}

TEST(SettingTest, CombineAndProject) {
  SymbolTable symbols;
  PdeSetting setting = MakeExample1Setting(&symbols);
  Instance source = ParseOrDie(setting, "E(a,b).", &symbols);
  Instance target = ParseOrDie(setting, "H(b,c).", &symbols);
  Instance combined = setting.CombineInstances(source, target);
  EXPECT_EQ(combined.fact_count(), 2u);
  EXPECT_TRUE(setting.SourcePart(combined).FactsEqual(source));
  EXPECT_TRUE(setting.TargetPart(combined).FactsEqual(target));
}

TEST(SettingTest, ToStringMentionsAllParts) {
  SymbolTable symbols;
  auto setting = PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}}, "E(x,y) -> H(x,y).", "H(x,y) -> E(x,y).",
      "H(x,y) & H(x,z) -> y = z.", &symbols);
  ASSERT_TRUE(setting.ok());
  std::string rendered = setting->ToString(symbols);
  EXPECT_NE(rendered.find("S = {E/2}"), std::string::npos);
  EXPECT_NE(rendered.find("T = {H/2}"), std::string::npos);
  EXPECT_NE(rendered.find("Σst"), std::string::npos);
  EXPECT_NE(rendered.find("Σts"), std::string::npos);
  EXPECT_NE(rendered.find("y = z"), std::string::npos);
}

}  // namespace
}  // namespace pdx
