// Concurrent admission stress for ConcurrentFingerprintSet, the ledger
// behind the oblivious chase's worker-side trigger dedup: when every
// worker races to admit the same fingerprints, each fingerprint must be
// won by exactly one caller (no duplicate firings) and every fingerprint
// must end up admitted (no lost triggers), across generations of
// retire-and-readmit the egd fixpoint drives. Carries the `parallel`
// ctest label; tools/check.sh additionally runs it under TSan.

#include <atomic>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "base/concurrent_set.h"
#include "base/thread_pool.h"
#include "chase/journal.h"
#include "chase/trigger_ledger.h"
#include "relational/value.h"

namespace pdx {
namespace {

// Well-spread but deterministic fingerprints: consecutive ints hash to
// the same stripe pattern every run.
uint64_t Fp(uint64_t i) { return i * 0x9e3779b97f4a7c15ull + 1; }

TEST(ConcurrentFingerprintSetTest, SingleThreadBasics) {
  ConcurrentFingerprintSet set;
  EXPECT_EQ(set.size(), 0u);
  EXPECT_TRUE(set.Insert(Fp(1)));
  EXPECT_FALSE(set.Insert(Fp(1)));  // duplicate: not admitted twice
  EXPECT_TRUE(set.Insert(Fp(2)));
  EXPECT_TRUE(set.Contains(Fp(1)));
  EXPECT_TRUE(set.Contains(Fp(2)));
  EXPECT_FALSE(set.Contains(Fp(3)));
  EXPECT_EQ(set.size(), 2u);
  set.Erase(Fp(1));
  EXPECT_FALSE(set.Contains(Fp(1)));
  EXPECT_TRUE(set.Insert(Fp(1)));  // re-admit after retirement
  EXPECT_EQ(set.size(), 2u);
  set.Erase(Fp(999));  // erasing an absent fingerprint is a no-op
  EXPECT_EQ(set.size(), 2u);
}

// All threads race to insert the full fingerprint range: every
// fingerprint is admitted exactly once in total (one winner), and all are
// present afterwards. This is the oblivious chase's invariant — a trigger
// seen by several partitions fires once, and no trigger is dropped.
TEST(ConcurrentFingerprintSetTest, ConcurrentAdmissionIsExactlyOnce) {
  constexpr size_t kFps = 20'000;
  constexpr size_t kThreads = 8;
  ConcurrentFingerprintSet set;
  std::atomic<uint64_t> wins{0};
  ThreadPool pool(kThreads);
  pool.ParallelFor(kThreads, [&](size_t) {
    uint64_t local_wins = 0;
    for (size_t f = 0; f < kFps; ++f) {
      if (set.Insert(Fp(f))) ++local_wins;
    }
    wins.fetch_add(local_wins, std::memory_order_relaxed);
  });
  EXPECT_EQ(wins.load(), kFps);
  EXPECT_EQ(set.size(), kFps);
  for (size_t f = 0; f < kFps; ++f) {
    ASSERT_TRUE(set.Contains(Fp(f))) << "fingerprint " << f << " lost";
  }
}

// Generations: admit everything, retire a subset sequentially (as the
// apply phase does after egd merges), then race to re-admit the retired
// subset. Only retired fingerprints are re-admitted, each exactly once.
TEST(ConcurrentFingerprintSetTest, RetireAndReadmitAcrossGenerations) {
  constexpr size_t kFps = 8'192;
  constexpr size_t kThreads = 8;
  ConcurrentFingerprintSet set;
  ThreadPool pool(kThreads);
  for (size_t f = 0; f < kFps; ++f) ASSERT_TRUE(set.Insert(Fp(f)));

  for (int generation = 0; generation < 4; ++generation) {
    // Retire every 3rd fingerprint, offset per generation (sequential:
    // retirement happens in the apply phase, between collect rounds).
    std::vector<uint64_t> retired;
    for (size_t f = generation; f < kFps; f += 3) {
      set.Erase(Fp(f));
      retired.push_back(Fp(f));
    }
    std::atomic<uint64_t> wins{0};
    pool.ParallelFor(kThreads, [&](size_t) {
      uint64_t local_wins = 0;
      for (size_t f = 0; f < kFps; ++f) {
        if (set.Insert(Fp(f))) ++local_wins;  // losers were never erased
      }
      wins.fetch_add(local_wins, std::memory_order_relaxed);
    });
    EXPECT_EQ(wins.load(), retired.size()) << "generation " << generation;
    EXPECT_EQ(set.size(), kFps) << "generation " << generation;
  }
}

// Mixed concurrent load on disjoint key ranges: writers insert their own
// range while readers probe another; per-range exactly-once still holds
// and probes of fully-inserted ranges always hit.
TEST(ConcurrentFingerprintSetTest, MixedInsertAndContains) {
  constexpr size_t kPerThread = 4'096;
  constexpr size_t kThreads = 8;
  ConcurrentFingerprintSet set;
  // Pre-populate thread 0's range so readers have a stable target.
  for (size_t f = 0; f < kPerThread; ++f) ASSERT_TRUE(set.Insert(Fp(f)));
  std::atomic<uint64_t> misses{0};
  ThreadPool pool(kThreads);
  pool.ParallelFor(kThreads, [&](size_t t) {
    if (t % 2 == 0) {
      // Readers: the pre-populated range must always be present.
      uint64_t local_misses = 0;
      for (size_t f = 0; f < kPerThread; ++f) {
        if (!set.Contains(Fp(f))) ++local_misses;
      }
      misses.fetch_add(local_misses, std::memory_order_relaxed);
    } else {
      // Writers: disjoint private ranges, every insert must win.
      for (size_t f = 0; f < kPerThread; ++f) {
        uint64_t fp = Fp((t + 1) * 1'000'000 + f);
        ASSERT_TRUE(set.Insert(fp));
      }
    }
  });
  EXPECT_EQ(misses.load(), 0u);
  EXPECT_EQ(set.size(), kPerThread * (1 + kThreads / 2));
}

// Deletion propagation's ledger contract, at the TriggerLedger level:
// Retire(fp) makes a single fired trigger re-admittable, and a subsequent
// admission race is again won exactly once. This is the delete→re-insert
// cycle StreamingChase drives (kill the journal entry, retire its
// fingerprint, re-fire when the body match re-forms).
TEST(TriggerLedgerTest, RetireSingleFingerprintReadmitsExactlyOnce) {
  constexpr size_t kFps = 4'096;
  constexpr size_t kThreads = 8;
  TriggerLedger ledger;
  ThreadPool pool(kThreads);
  for (size_t f = 0; f < kFps; ++f) ASSERT_TRUE(ledger.Admit(Fp(f)));

  for (int cycle = 0; cycle < 3; ++cycle) {
    // Sequential retirement (the apply phase kills journal entries).
    size_t retired = 0;
    for (size_t f = cycle; f < kFps; f += 4) {
      ASSERT_TRUE(ledger.Retire(Fp(f)));
      EXPECT_FALSE(ledger.Retire(Fp(f)));  // double-retire is refused
      ++retired;
    }
    // Concurrent re-admission (a speculative collect phase re-fires).
    std::atomic<uint64_t> wins{0};
    pool.ParallelFor(kThreads, [&](size_t) {
      uint64_t local_wins = 0;
      for (size_t f = 0; f < kFps; ++f) {
        if (ledger.Admit(Fp(f))) ++local_wins;
      }
      wins.fetch_add(local_wins, std::memory_order_relaxed);
    });
    EXPECT_EQ(wins.load(), retired) << "cycle " << cycle;
    EXPECT_EQ(ledger.size(), kFps) << "cycle " << cycle;
  }
}

// The journal embeds the ledger: killing an entry retires its fingerprint
// so the same universal binding records exactly once more — with fresh
// existential nulls, which must not perturb the fingerprint.
TEST(ChaseJournalTest, KillThenRerecordIsExactlyOnce) {
  SymbolTable symbols;
  Value a = symbols.InternConstant("a");
  Value b = symbols.InternConstant("b");
  const std::vector<bool> existential = {false, false, true};

  ChaseJournal journal;
  Value row[3] = {a, b, symbols.FreshNull()};
  ASSERT_TRUE(journal.RecordTgd(0, row, 3, existential));
  EXPECT_EQ(journal.live_count(), 1u);

  // Same universal binding, different invented null: still a duplicate
  // while the entry is alive.
  row[2] = symbols.FreshNull();
  EXPECT_FALSE(journal.RecordTgd(0, row, 3, existential));
  EXPECT_EQ(journal.size(), 1u);

  // Kill retires the fingerprint; the re-derived firing is admitted once.
  ASSERT_TRUE(journal.Kill(0));
  EXPECT_FALSE(journal.Kill(0));  // already dead
  EXPECT_EQ(journal.live_count(), 0u);
  row[2] = symbols.FreshNull();
  EXPECT_TRUE(journal.RecordTgd(0, row, 3, existential));
  EXPECT_FALSE(journal.RecordTgd(0, row, 3, existential));
  EXPECT_EQ(journal.size(), 2u);
  EXPECT_EQ(journal.live_count(), 1u);

  // A different dependency index is a different trigger; an egd under the
  // same index and row lives in its own fingerprint namespace.
  EXPECT_TRUE(journal.RecordTgd(1, row, 3, existential));
  EXPECT_TRUE(journal.RecordEgd(0, row, 3));
  EXPECT_EQ(journal.live_count(), 3u);
}

// Rollback primitives restore the exactly-once discipline byte-for-byte:
// Revive re-claims a killed fingerprint, TruncateTo retires dropped live
// ones.
TEST(ChaseJournalTest, ReviveAndTruncateRestoreLedgerState) {
  SymbolTable symbols;
  Value a = symbols.InternConstant("a");
  Value b = symbols.InternConstant("b");
  const std::vector<bool> no_existential = {false, false};

  ChaseJournal journal;
  Value row0[2] = {a, b};
  Value row1[2] = {b, a};
  ASSERT_TRUE(journal.RecordTgd(0, row0, 2, no_existential));
  ASSERT_TRUE(journal.RecordTgd(0, row1, 2, no_existential));

  // Kill + Revive (a failed batch undoing its cascade): the fingerprint
  // is claimed again, so re-recording is refused.
  ASSERT_TRUE(journal.Kill(0));
  journal.Revive(0);
  EXPECT_EQ(journal.live_count(), 2u);
  EXPECT_FALSE(journal.RecordTgd(0, row0, 2, no_existential));

  // TruncateTo (a failed batch dropping its own recordings): the dropped
  // live fingerprint is retired, so the trigger can record again.
  journal.TruncateTo(1);
  EXPECT_EQ(journal.size(), 1u);
  EXPECT_TRUE(journal.RecordTgd(0, row1, 2, no_existential));

  // Swap moves the whole state (the fallback re-chase commit path).
  ChaseJournal scratch;
  journal.Swap(scratch);
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_EQ(scratch.size(), 2u);
  EXPECT_TRUE(journal.RecordTgd(0, row0, 2, no_existential));
  EXPECT_FALSE(scratch.RecordTgd(0, row1, 2, no_existential));
}

}  // namespace
}  // namespace pdx
