// Concurrent admission stress for ConcurrentFingerprintSet, the ledger
// behind the oblivious chase's worker-side trigger dedup: when every
// worker races to admit the same fingerprints, each fingerprint must be
// won by exactly one caller (no duplicate firings) and every fingerprint
// must end up admitted (no lost triggers), across generations of
// retire-and-readmit the egd fixpoint drives. Carries the `parallel`
// ctest label; tools/check.sh additionally runs it under TSan.

#include <atomic>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "base/concurrent_set.h"
#include "base/thread_pool.h"

namespace pdx {
namespace {

// Well-spread but deterministic fingerprints: consecutive ints hash to
// the same stripe pattern every run.
uint64_t Fp(uint64_t i) { return i * 0x9e3779b97f4a7c15ull + 1; }

TEST(ConcurrentFingerprintSetTest, SingleThreadBasics) {
  ConcurrentFingerprintSet set;
  EXPECT_EQ(set.size(), 0u);
  EXPECT_TRUE(set.Insert(Fp(1)));
  EXPECT_FALSE(set.Insert(Fp(1)));  // duplicate: not admitted twice
  EXPECT_TRUE(set.Insert(Fp(2)));
  EXPECT_TRUE(set.Contains(Fp(1)));
  EXPECT_TRUE(set.Contains(Fp(2)));
  EXPECT_FALSE(set.Contains(Fp(3)));
  EXPECT_EQ(set.size(), 2u);
  set.Erase(Fp(1));
  EXPECT_FALSE(set.Contains(Fp(1)));
  EXPECT_TRUE(set.Insert(Fp(1)));  // re-admit after retirement
  EXPECT_EQ(set.size(), 2u);
  set.Erase(Fp(999));  // erasing an absent fingerprint is a no-op
  EXPECT_EQ(set.size(), 2u);
}

// All threads race to insert the full fingerprint range: every
// fingerprint is admitted exactly once in total (one winner), and all are
// present afterwards. This is the oblivious chase's invariant — a trigger
// seen by several partitions fires once, and no trigger is dropped.
TEST(ConcurrentFingerprintSetTest, ConcurrentAdmissionIsExactlyOnce) {
  constexpr size_t kFps = 20'000;
  constexpr size_t kThreads = 8;
  ConcurrentFingerprintSet set;
  std::atomic<uint64_t> wins{0};
  ThreadPool pool(kThreads);
  pool.ParallelFor(kThreads, [&](size_t) {
    uint64_t local_wins = 0;
    for (size_t f = 0; f < kFps; ++f) {
      if (set.Insert(Fp(f))) ++local_wins;
    }
    wins.fetch_add(local_wins, std::memory_order_relaxed);
  });
  EXPECT_EQ(wins.load(), kFps);
  EXPECT_EQ(set.size(), kFps);
  for (size_t f = 0; f < kFps; ++f) {
    ASSERT_TRUE(set.Contains(Fp(f))) << "fingerprint " << f << " lost";
  }
}

// Generations: admit everything, retire a subset sequentially (as the
// apply phase does after egd merges), then race to re-admit the retired
// subset. Only retired fingerprints are re-admitted, each exactly once.
TEST(ConcurrentFingerprintSetTest, RetireAndReadmitAcrossGenerations) {
  constexpr size_t kFps = 8'192;
  constexpr size_t kThreads = 8;
  ConcurrentFingerprintSet set;
  ThreadPool pool(kThreads);
  for (size_t f = 0; f < kFps; ++f) ASSERT_TRUE(set.Insert(Fp(f)));

  for (int generation = 0; generation < 4; ++generation) {
    // Retire every 3rd fingerprint, offset per generation (sequential:
    // retirement happens in the apply phase, between collect rounds).
    std::vector<uint64_t> retired;
    for (size_t f = generation; f < kFps; f += 3) {
      set.Erase(Fp(f));
      retired.push_back(Fp(f));
    }
    std::atomic<uint64_t> wins{0};
    pool.ParallelFor(kThreads, [&](size_t) {
      uint64_t local_wins = 0;
      for (size_t f = 0; f < kFps; ++f) {
        if (set.Insert(Fp(f))) ++local_wins;  // losers were never erased
      }
      wins.fetch_add(local_wins, std::memory_order_relaxed);
    });
    EXPECT_EQ(wins.load(), retired.size()) << "generation " << generation;
    EXPECT_EQ(set.size(), kFps) << "generation " << generation;
  }
}

// Mixed concurrent load on disjoint key ranges: writers insert their own
// range while readers probe another; per-range exactly-once still holds
// and probes of fully-inserted ranges always hit.
TEST(ConcurrentFingerprintSetTest, MixedInsertAndContains) {
  constexpr size_t kPerThread = 4'096;
  constexpr size_t kThreads = 8;
  ConcurrentFingerprintSet set;
  // Pre-populate thread 0's range so readers have a stable target.
  for (size_t f = 0; f < kPerThread; ++f) ASSERT_TRUE(set.Insert(Fp(f)));
  std::atomic<uint64_t> misses{0};
  ThreadPool pool(kThreads);
  pool.ParallelFor(kThreads, [&](size_t t) {
    if (t % 2 == 0) {
      // Readers: the pre-populated range must always be present.
      uint64_t local_misses = 0;
      for (size_t f = 0; f < kPerThread; ++f) {
        if (!set.Contains(Fp(f))) ++local_misses;
      }
      misses.fetch_add(local_misses, std::memory_order_relaxed);
    } else {
      // Writers: disjoint private ranges, every insert must win.
      for (size_t f = 0; f < kPerThread; ++f) {
        uint64_t fp = Fp((t + 1) * 1'000'000 + f);
        ASSERT_TRUE(set.Insert(fp));
      }
    }
  });
  EXPECT_EQ(misses.load(), 0u);
  EXPECT_EQ(set.size(), kPerThread * (1 + kThreads / 2));
}

}  // namespace
}  // namespace pdx
