#include "chase/chase.h"

#include "gtest/gtest.h"
#include "logic/parser.h"

namespace pdx {
namespace {

class ChaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.AddRelation("E", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("H", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("F", 2).ok());
    e_ = schema_.FindRelation("E").value();
    h_ = schema_.FindRelation("H").value();
    f_ = schema_.FindRelation("F").value();
    a_ = symbols_.InternConstant("a");
    b_ = symbols_.InternConstant("b");
    c_ = symbols_.InternConstant("c");
  }

  std::vector<Tgd> ParseTgds(const char* text) {
    auto deps = ParseDependencies(text, schema_, &symbols_);
    EXPECT_TRUE(deps.ok()) << deps.status().ToString();
    return std::move(deps).value().tgds;
  }

  std::vector<Egd> ParseEgds(const char* text) {
    auto deps = ParseDependencies(text, schema_, &symbols_);
    EXPECT_TRUE(deps.ok()) << deps.status().ToString();
    return std::move(deps).value().egds;
  }

  Schema schema_;
  SymbolTable symbols_;
  RelationId e_ = 0, h_ = 0, f_ = 0;
  Value a_, b_, c_;
};

TEST_F(ChaseTest, FullTgdComputesCompositionClosure) {
  Instance start(&schema_);
  start.AddFact(e_, {a_, b_});
  start.AddFact(e_, {b_, c_});
  ChaseResult result =
      Chase(start, ParseTgds("E(x,z) & E(z,y) -> H(x,y)."), &symbols_);
  EXPECT_EQ(result.outcome, ChaseOutcome::kSuccess);
  EXPECT_TRUE(result.instance.Contains(h_, {a_, c_}));
  EXPECT_EQ(result.instance.tuples(h_).size(), 1u);
  EXPECT_EQ(result.nulls_created, 0);
  EXPECT_EQ(result.steps, 1);
}

TEST_F(ChaseTest, ExistentialsCreateFreshNulls) {
  Instance start(&schema_);
  start.AddFact(e_, {a_, b_});
  ChaseResult result =
      Chase(start, ParseTgds("E(x,y) -> exists z: H(y,z)."), &symbols_);
  EXPECT_EQ(result.outcome, ChaseOutcome::kSuccess);
  EXPECT_EQ(result.nulls_created, 1);
  ASSERT_EQ(result.instance.tuples(h_).size(), 1u);
  const TupleView t = result.instance.tuples(h_)[0];
  EXPECT_EQ(t[0], b_);
  EXPECT_TRUE(t[1].is_null());
}

TEST_F(ChaseTest, RestrictedChaseDoesNotFireSatisfiedTriggers) {
  Instance start(&schema_);
  start.AddFact(e_, {a_, b_});
  start.AddFact(h_, {b_, c_});  // already witnesses the existential
  ChaseResult result =
      Chase(start, ParseTgds("E(x,y) -> exists z: H(y,z)."), &symbols_);
  EXPECT_EQ(result.outcome, ChaseOutcome::kSuccess);
  EXPECT_EQ(result.steps, 0);
  EXPECT_EQ(result.nulls_created, 0);
}

TEST_F(ChaseTest, CascadingTgdsReachFixpoint) {
  Instance start(&schema_);
  start.AddFact(e_, {a_, b_});
  ChaseResult result = Chase(
      start, ParseTgds("E(x,y) -> H(x,y). H(x,y) -> F(x,y)."), &symbols_);
  EXPECT_EQ(result.outcome, ChaseOutcome::kSuccess);
  EXPECT_TRUE(result.instance.Contains(f_, {a_, b_}));
  EXPECT_EQ(result.steps, 2);
}

TEST_F(ChaseTest, EgdMergesNullIntoConstant) {
  Instance start(&schema_);
  Value n = symbols_.FreshNull();
  start.AddFact(h_, {a_, b_});
  start.AddFact(h_, {a_, n});
  ChaseResult result =
      Chase(start, {}, ParseEgds("H(x,y) & H(x,z) -> y = z."), &symbols_);
  EXPECT_EQ(result.outcome, ChaseOutcome::kSuccess);
  // The merge is a union in the value layer: the raw store keeps both
  // tuples, the resolved view collapses them onto H(a,b).
  EXPECT_EQ(result.instance.ResolvedFactCount(), 1u);
  EXPECT_TRUE(result.instance.Contains(h_, {a_, b_}));
  EXPECT_EQ(result.Resolve(n), b_);
}

TEST_F(ChaseTest, EgdMergesNullIntoNull) {
  Instance start(&schema_);
  Value n1 = symbols_.FreshNull();
  Value n2 = symbols_.FreshNull();
  start.AddFact(h_, {a_, n1});
  start.AddFact(h_, {a_, n2});
  ChaseResult result =
      Chase(start, {}, ParseEgds("H(x,y) & H(x,z) -> y = z."), &symbols_);
  EXPECT_EQ(result.outcome, ChaseOutcome::kSuccess);
  EXPECT_EQ(result.instance.ResolvedFactCount(), 1u);
  EXPECT_EQ(result.Resolve(n1), result.Resolve(n2));
}

TEST_F(ChaseTest, EgdFailsOnDistinctConstants) {
  Instance start(&schema_);
  start.AddFact(h_, {a_, b_});
  start.AddFact(h_, {a_, c_});
  ChaseResult result =
      Chase(start, {}, ParseEgds("H(x,y) & H(x,z) -> y = z."), &symbols_);
  EXPECT_EQ(result.outcome, ChaseOutcome::kFailed);
  EXPECT_FALSE(result.failure.empty());
}

TEST_F(ChaseTest, TgdAndEgdInteract) {
  // E copies into H; the egd then enforces key-ness of H's first column.
  Instance start(&schema_);
  Value n = symbols_.FreshNull();
  start.AddFact(e_, {a_, b_});
  start.AddFact(h_, {a_, n});
  ChaseResult result =
      Chase(start, ParseTgds("E(x,y) -> H(x,y)."),
            ParseEgds("H(x,y) & H(x,z) -> y = z."), &symbols_);
  EXPECT_EQ(result.outcome, ChaseOutcome::kSuccess);
  // Resolved view: E(a,b) plus the single merged H(a,b).
  EXPECT_EQ(result.instance.ResolvedFactCount(), 2u);
  EXPECT_TRUE(result.instance.Contains(h_, {a_, b_}));
  EXPECT_EQ(result.Resolve(n), b_);
}

TEST_F(ChaseTest, NonTerminatingChaseHitsBudget) {
  Instance start(&schema_);
  start.AddFact(h_, {a_, b_});
  ChaseOptions options;
  options.max_steps = 100;
  ChaseResult result = Chase(
      start, ParseTgds("H(x,y) -> exists z: H(y,z)."), {}, &symbols_,
      options);
  EXPECT_EQ(result.outcome, ChaseOutcome::kBudgetExhausted);
  EXPECT_EQ(result.steps, 100);
}

TEST_F(ChaseTest, WeaklyAcyclicChaseTerminatesWellUnderBudget) {
  Instance start(&schema_);
  for (int i = 0; i < 20; ++i) {
    start.AddFact(e_, {symbols_.InternConstant("x" + std::to_string(i)),
                       symbols_.InternConstant("x" + std::to_string(i + 1))});
  }
  ChaseResult result = Chase(
      start,
      ParseTgds("E(x,y) -> exists z: H(x,z). H(x,z) -> F(x,z)."),
      &symbols_);
  EXPECT_EQ(result.outcome, ChaseOutcome::kSuccess);
  EXPECT_EQ(result.nulls_created, 20);
  EXPECT_EQ(result.instance.tuples(h_).size(), 20u);
  EXPECT_EQ(result.instance.tuples(f_).size(), 20u);
}

TEST_F(ChaseTest, SatisfactionChecks) {
  Instance instance(&schema_);
  instance.AddFact(e_, {a_, b_});
  instance.AddFact(h_, {a_, b_});
  EXPECT_TRUE(SatisfiesTgd(instance, ParseTgds("E(x,y) -> H(x,y).")[0]));
  EXPECT_FALSE(SatisfiesTgd(instance, ParseTgds("E(x,y) -> H(y,x).")[0]));
  EXPECT_TRUE(SatisfiesEgd(
      instance, ParseEgds("H(x,y) & H(x,z) -> y = z.")[0]));
  instance.AddFact(h_, {a_, c_});
  EXPECT_FALSE(SatisfiesEgd(
      instance, ParseEgds("H(x,y) & H(x,z) -> y = z.")[0]));
}

TEST_F(ChaseTest, DisjunctiveSatisfaction) {
  auto deps = ParseDependencies("H(x,y) -> (E(x,y)) | (F(x,y)).", schema_,
                                &symbols_);
  ASSERT_TRUE(deps.ok());
  const DisjunctiveTgd& tgd = deps->disjunctive_tgds[0];
  Instance instance(&schema_);
  instance.AddFact(h_, {a_, b_});
  EXPECT_FALSE(SatisfiesDisjunctiveTgd(instance, tgd));
  instance.AddFact(f_, {a_, b_});
  EXPECT_TRUE(SatisfiesDisjunctiveTgd(instance, tgd));
}

TEST_F(ChaseTest, SatisfiesAllAggregates) {
  auto deps = ParseDependencies(
      "E(x,y) -> H(x,y). H(x,y) & H(x,z) -> y = z.", schema_, &symbols_);
  ASSERT_TRUE(deps.ok());
  Instance instance(&schema_);
  instance.AddFact(e_, {a_, b_});
  EXPECT_FALSE(SatisfiesAll(instance, *deps));
  instance.AddFact(h_, {a_, b_});
  EXPECT_TRUE(SatisfiesAll(instance, *deps));
}

}  // namespace
}  // namespace pdx
