#include "relational/instance_io.h"

#include "gtest/gtest.h"

namespace pdx {
namespace {

class InstanceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.AddRelation("E", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("U", 1).ok());
  }

  Schema schema_;
  SymbolTable symbols_;
};

TEST_F(InstanceIoTest, ParsesFactsWithPeriods) {
  auto instance = ParseInstance("E(a,b). E(b,c). U(a).", schema_, &symbols_);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->fact_count(), 3u);
  EXPECT_EQ(instance->ToString(symbols_), "E(a,b).\nE(b,c).\nU(a).");
}

TEST_F(InstanceIoTest, PeriodsAreOptional) {
  auto instance = ParseInstance("E(a,b) E(b,c)", schema_, &symbols_);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->fact_count(), 2u);
}

TEST_F(InstanceIoTest, CommentsAndWhitespace) {
  auto instance = ParseInstance(
      "# a comment\n  E(a,b).   # trailing\n\nU(c).", schema_, &symbols_);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->fact_count(), 2u);
}

TEST_F(InstanceIoTest, NullLabelsShareWithinOneParse) {
  auto instance = ParseInstance("E(a,_x). E(_x,b). E(_y,c).", schema_,
                                &symbols_);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->Nulls().size(), 2u);
}

TEST_F(InstanceIoTest, NullLabelsFreshAcrossParses) {
  auto first = ParseInstance("E(a,_x).", schema_, &symbols_);
  auto second = ParseInstance("E(b,_x).", schema_, &symbols_);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first->Nulls()[0], second->Nulls()[0]);
}

TEST_F(InstanceIoTest, QuotedAndNumericConstants) {
  auto instance = ParseInstance("E('hello world', 42).", schema_, &symbols_);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->ToString(symbols_), "E(hello world,42).");
}

TEST_F(InstanceIoTest, RejectsUnknownRelation) {
  auto instance = ParseInstance("Z(a).", schema_, &symbols_);
  EXPECT_FALSE(instance.ok());
  EXPECT_EQ(instance.status().code(), StatusCode::kNotFound);
}

TEST_F(InstanceIoTest, RejectsArityMismatch) {
  auto instance = ParseInstance("E(a).", schema_, &symbols_);
  EXPECT_FALSE(instance.ok());
  EXPECT_EQ(instance.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(InstanceIoTest, RejectsMalformedText) {
  EXPECT_FALSE(ParseInstance("E a,b).", schema_, &symbols_).ok());
  EXPECT_FALSE(ParseInstance("E(a,b", schema_, &symbols_).ok());
  EXPECT_FALSE(ParseInstance("E(a b)", schema_, &symbols_).ok());
}

TEST_F(InstanceIoTest, EmptyTextYieldsEmptyInstance) {
  auto instance = ParseInstance("  # nothing\n", schema_, &symbols_);
  ASSERT_TRUE(instance.ok());
  EXPECT_TRUE(instance->empty());
}

}  // namespace
}  // namespace pdx
