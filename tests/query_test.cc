#include "logic/conjunctive_query.h"

#include "gtest/gtest.h"
#include "logic/parser.h"

namespace pdx {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.AddRelation("E", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("H", 2).ok());
    instance_ = std::make_unique<Instance>(&schema_);
    a_ = symbols_.InternConstant("a");
    b_ = symbols_.InternConstant("b");
    c_ = symbols_.InternConstant("c");
    e_ = schema_.FindRelation("E").value();
    h_ = schema_.FindRelation("H").value();
    instance_->AddFact(e_, {a_, b_});
    instance_->AddFact(e_, {b_, c_});
    instance_->AddFact(h_, {a_, c_});
  }

  ConjunctiveQuery Parse(const char* text) {
    auto query = ParseQuery(text, schema_, &symbols_);
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    return std::move(query).value();
  }

  Schema schema_;
  SymbolTable symbols_;
  std::unique_ptr<Instance> instance_;
  Value a_, b_, c_;
  RelationId e_ = 0, h_ = 0;
};

TEST_F(QueryTest, EvaluatesProjection) {
  std::vector<Tuple> answers =
      EvaluateQuery(Parse("q(x) :- E(x,y)."), *instance_);
  EXPECT_EQ(answers.size(), 2u);  // a and b
}

TEST_F(QueryTest, EvaluatesJoin) {
  std::vector<Tuple> answers =
      EvaluateQuery(Parse("q(x,z) :- E(x,y) & E(y,z)."), *instance_);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0], (Tuple{a_, c_}));
}

TEST_F(QueryTest, AnswersAreDeduplicated) {
  instance_->AddFact(e_, {a_, c_});
  std::vector<Tuple> answers =
      EvaluateQuery(Parse("q(x) :- E(x,y)."), *instance_);
  EXPECT_EQ(answers.size(), 2u);
}

TEST_F(QueryTest, BooleanQueryViaUnion) {
  UnionQuery query;
  query.disjuncts.push_back(Parse("q() :- H(x,y) & E(y,z)."));
  EXPECT_FALSE(EvaluateBoolean(query, *instance_));
  query.disjuncts.push_back(Parse("q() :- H(x,y)."));
  EXPECT_TRUE(EvaluateBoolean(query, *instance_));
}

TEST_F(QueryTest, UnionCombinesDisjuncts) {
  UnionQuery query;
  query.disjuncts.push_back(Parse("q(x) :- E(x,y)."));
  query.disjuncts.push_back(Parse("q(x) :- H(x,y)."));
  std::vector<Tuple> answers = EvaluateUnionQuery(query, *instance_);
  EXPECT_EQ(answers.size(), 2u);  // {a, b}; a appears in both disjuncts
}

TEST_F(QueryTest, NullFreeEvaluationDropsNullAnswers) {
  Value n = symbols_.FreshNull();
  instance_->AddFact(e_, {c_, n});
  ConjunctiveQuery q = Parse("q(x,y) :- E(x,y).");
  EXPECT_EQ(EvaluateQuery(q, *instance_).size(), 3u);
  std::vector<Tuple> null_free = EvaluateQueryNullFree(q, *instance_);
  EXPECT_EQ(null_free.size(), 2u);
  for (const Tuple& t : null_free) {
    for (const Value& v : t) EXPECT_TRUE(v.is_constant());
  }
}

TEST_F(QueryTest, NullsJoinLikeOrdinaryValues) {
  Value n = symbols_.FreshNull();
  instance_->AddFact(e_, {c_, n});
  instance_->AddFact(e_, {n, a_});
  std::vector<Tuple> answers =
      EvaluateQuery(Parse("q(x,z) :- E(x,y) & E(y,z)."), *instance_);
  // a->b->c, b->c->n, c->n->a, n->a->b.
  EXPECT_EQ(answers.size(), 4u);
}

TEST_F(QueryTest, ValidateUnionQueryChecksArity) {
  UnionQuery query;
  query.disjuncts.push_back(Parse("q(x) :- E(x,y)."));
  query.disjuncts.push_back(Parse("q(x,y) :- E(x,y)."));
  EXPECT_FALSE(ValidateUnionQuery(query, schema_).ok());
}

TEST_F(QueryTest, ConstantsInQueries) {
  std::vector<Tuple> answers =
      EvaluateQuery(Parse("q(x) :- E('a', x)."), *instance_);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0][0], b_);
}

}  // namespace
}  // namespace pdx
