// Property tests of the flat storage primitives (relational/flat_index.h)
// and of the RelationStore invariants built on them: random
// insert/erase/repoint schedules against a std::unordered_map reference,
// the swap-with-last deletion protocol at the Instance level, and COW
// clone sharing (a snapshot's buckets must be bit-stable while the live
// instance mutates its cloned stores).

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "relational/flat_index.h"
#include "relational/instance.h"
#include "workload/random.h"

namespace pdx {
namespace {

std::vector<int32_t> Sorted(TupleIndexSpan span) {
  std::vector<int32_t> out(span.begin(), span.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int32_t> Sorted(std::vector<int32_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// Random Add/Erase/Repoint schedules over a skewed key space (small key
// pool → buckets deep enough to spill inline storage into the overflow
// arena repeatedly). After every operation batch the index must agree
// bucket-for-bucket with an unordered_map reference, as multisets — Erase
// swaps within the bucket, so order is not part of the contract.
TEST(FlatIndexTest, RandomOpsMatchUnorderedMapReference) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Rng rng(seed);
    FlatIndex index;
    std::unordered_map<uint64_t, std::vector<int32_t>> ref;
    std::vector<std::pair<uint64_t, int32_t>> live;
    int32_t next = 0;
    const uint32_t key_pool = 3 + rng.UniformInt(60);
    for (int op = 0; op < 20000; ++op) {
      const uint32_t draw = rng.UniformInt(100);
      if (draw < 70 || live.empty()) {
        const uint64_t key = rng.UniformInt(key_pool);
        const int32_t idx = next++;
        index.Add(key, idx);
        ref[key].push_back(idx);
        live.emplace_back(key, idx);
      } else if (draw < 90) {
        const size_t pick = rng.UniformInt(static_cast<uint32_t>(live.size()));
        const auto [key, idx] = live[pick];
        live[pick] = live.back();
        live.pop_back();
        EXPECT_TRUE(index.Erase(key, idx));
        std::vector<int32_t>& bucket = ref[key];
        bucket.erase(std::find(bucket.begin(), bucket.end(), idx));
      } else {
        const size_t pick = rng.UniformInt(static_cast<uint32_t>(live.size()));
        const uint64_t key = live[pick].first;
        const int32_t from = live[pick].second;
        const int32_t to = next++;
        index.Repoint(key, from, to);
        live[pick].second = to;
        std::vector<int32_t>& bucket = ref[key];
        *std::find(bucket.begin(), bucket.end(), from) = to;
      }
      if (op % 512 == 0) {
        for (const auto& [key, bucket] : ref) {
          ASSERT_EQ(Sorted(index.Find(key)), Sorted(bucket))
              << "seed " << seed << " op " << op << " key " << key;
        }
      }
    }
    for (const auto& [key, bucket] : ref) {
      EXPECT_EQ(Sorted(index.Find(key)), Sorted(bucket)) << "seed " << seed;
    }
    // Keys never inserted (or fully drained) report empty, and erasing an
    // absent entry reports false without disturbing anything.
    EXPECT_TRUE(index.Find(~1ull).empty());
    EXPECT_FALSE(index.Erase(~1ull, 0));
    for (const auto& [key, bucket] : ref) {
      EXPECT_FALSE(index.Erase(key, next + 1)) << "seed " << seed;
      EXPECT_EQ(Sorted(index.Find(key)), Sorted(bucket)) << "seed " << seed;
    }
  }
}

struct FlatIndexInstanceTest : ::testing::Test {
  Schema schema;
  SymbolTable symbols;

  FlatIndexInstanceTest() { PDX_CHECK(schema.AddRelation("R", 2).ok()); }

  Value Const(uint32_t i) {
    return symbols.InternConstant("c" + std::to_string(i));
  }
};

// Random AddFact/RemoveFact schedules: RemoveFact's swap-with-last
// (arena compaction + index/dedup repoint) must keep every positional
// bucket pointing at exactly the right arena rows.
TEST_F(FlatIndexInstanceTest, RemoveFactSwapWithLastKeepsIndexConsistent) {
  for (uint64_t seed : {7u, 8u, 9u}) {
    Rng rng(seed);
    Instance instance(&schema);
    std::vector<Tuple> facts;  // reference multiset (all distinct)
    const uint32_t pool = 12;
    for (int op = 0; op < 4000; ++op) {
      if (rng.UniformInt(3) != 0 || facts.empty()) {
        Tuple t{Const(rng.UniformInt(pool)), Const(rng.UniformInt(pool))};
        if (instance.AddFact(0, Tuple(t))) facts.push_back(t);
      } else {
        const size_t pick =
            rng.UniformInt(static_cast<uint32_t>(facts.size()));
        Tuple victim = facts[pick];
        facts[pick] = facts.back();
        facts.pop_back();
        ASSERT_TRUE(instance.RemoveFact(0, victim)) << "seed " << seed;
        ASSERT_FALSE(instance.Contains(0, victim)) << "seed " << seed;
      }
      if (op % 256 == 0) {
        ASSERT_EQ(instance.fact_count(), facts.size()) << "seed " << seed;
        for (const Tuple& t : facts) {
          ASSERT_TRUE(instance.Contains(0, t)) << "seed " << seed;
        }
        // Every positional bucket maps through the arena to exactly the
        // reference facts holding that value at that position.
        for (int pos = 0; pos < 2; ++pos) {
          for (uint32_t c = 0; c < pool; ++c) {
            const Value v = Const(c);
            size_t expected = 0;
            for (const Tuple& t : facts) expected += t[pos] == v ? 1 : 0;
            const TupleIndexSpan bucket =
                instance.TuplesWithValueAt(0, pos, v);
            ASSERT_EQ(bucket.size(), expected)
                << "seed " << seed << " pos " << pos << " c " << c;
            const TupleList tuples = instance.tuples(0);
            for (int32_t idx : bucket) {
              ASSERT_EQ(tuples[idx][pos], v) << "seed " << seed;
            }
          }
        }
      }
    }
  }
}

// COW clone sharing: a copied instance shares stores until one side
// mutates; afterwards the snapshot's contents, buckets and fingerprint
// must be exactly what they were at copy time.
TEST_F(FlatIndexInstanceTest, CowCloneKeepsSnapshotBucketsStable) {
  Instance live(&schema);
  for (uint32_t i = 0; i < 32; ++i) {
    live.AddFact(0, {Const(i % 5), Const(i)});
  }
  Instance snapshot = live;  // shared stores, no copy yet
  const uint64_t snapshot_fp = snapshot.CanonicalFingerprint();
  const size_t snapshot_bucket = snapshot.TuplesWithValueAt(0, 0, Const(0)).size();

  // Mutations on the live side force a clone-on-unshare; the snapshot
  // keeps the original store.
  for (uint32_t i = 32; i < 256; ++i) {
    live.AddFact(0, {Const(0), Const(i)});
  }
  ASSERT_TRUE(live.RemoveFact(0, {Const(0), Const(0)}));
  EXPECT_EQ(snapshot.CanonicalFingerprint(), snapshot_fp);
  EXPECT_EQ(snapshot.TuplesWithValueAt(0, 0, Const(0)).size(),
            snapshot_bucket);
  EXPECT_TRUE(snapshot.Contains(0, {Const(0), Const(0)}));
  EXPECT_FALSE(live.Contains(0, {Const(0), Const(0)}));
  EXPECT_GT(live.TuplesWithValueAt(0, 0, Const(0)).size(), snapshot_bucket);

  // And the other direction: mutating the snapshot must not leak into the
  // (already cloned) live side.
  Instance branch = live;
  branch.AddFact(0, {Const(4), Const(999)});
  EXPECT_FALSE(live.Contains(0, {Const(4), Const(999)}));
  EXPECT_TRUE(branch.Contains(0, {Const(4), Const(999)}));
}

// Merged-value lookups route through the resolved-class bucket cache;
// the cached concatenation must match a fresh per-member scan, stay
// correct across further merges (version bump), and across store
// mutation (invalidation).
TEST_F(FlatIndexInstanceTest, ResolvedClassBucketsTrackMergesAndMutation) {
  Instance instance(&schema);
  Value n1 = symbols.FreshNull();
  Value n2 = symbols.FreshNull();
  instance.AddFact(0, {n1, Const(1)});
  instance.AddFact(0, {n2, Const(2)});
  instance.AddFact(0, {Const(7), Const(3)});

  Instance::MergeResult merge = instance.MergeValues(n1, n2);
  ASSERT_TRUE(merge.merged);
  const Value root = instance.ResolveValue(n1);
  // Both null-headed rows are in the class bucket; repeated calls hit the
  // cache and must agree.
  EXPECT_EQ(instance.TuplesWithResolvedValueAt(0, 0, root).size(), 2u);
  EXPECT_EQ(instance.TuplesWithResolvedValueAt(0, 0, root).size(), 2u);
  EXPECT_EQ(instance.CountTuplesWithResolvedValueAt(0, 0, root), 2u);

  // A further merge bumps the resolver version: the cache entry must
  // rebuild, not serve the stale two-member bucket.
  Instance::MergeResult merge2 = instance.MergeValues(n1, Const(7));
  ASSERT_TRUE(merge2.merged);
  const Value root2 = instance.ResolveValue(n2);
  EXPECT_EQ(instance.TuplesWithResolvedValueAt(0, 0, root2).size(), 3u);

  // Store mutation invalidates the cache: a new row with the root value
  // must appear in the bucket.
  instance.AddFact(0, {root2, Const(4)});
  EXPECT_EQ(instance.TuplesWithResolvedValueAt(0, 0, root2).size(), 4u);
}

}  // namespace
}  // namespace pdx
