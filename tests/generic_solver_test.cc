#include "pde/generic_solver.h"

#include "gtest/gtest.h"
#include "pde/solution.h"
#include "tests/test_util.h"
#include "workload/reductions.h"

namespace pdx {
namespace {

using testing_util::MakeExample1Setting;
using testing_util::MakePathSetting;
using testing_util::ParseOrDie;
using testing_util::Unwrap;

class GenericSolverTest : public ::testing::Test {
 protected:
  GenericSolverTest() : setting_(MakeExample1Setting(&symbols_)) {}

  GenericSolveResult Solve(const Instance& source, const Instance& target) {
    return Unwrap(
        GenericExistsSolution(setting_, source, target, &symbols_),
        "GenericExistsSolution");
  }

  SymbolTable symbols_;
  PdeSetting setting_;
};

TEST_F(GenericSolverTest, Example1NoSolution) {
  Instance source = ParseOrDie(setting_, "E(a,b). E(b,c).", &symbols_);
  GenericSolveResult result = Solve(source, setting_.EmptyInstance());
  EXPECT_EQ(result.outcome, SolveOutcome::kNoSolution);
  EXPECT_FALSE(result.solution.has_value());
}

TEST_F(GenericSolverTest, Example1UniqueSolution) {
  Instance source = ParseOrDie(setting_, "E(a,a).", &symbols_);
  GenericSolveResult result = Solve(source, setting_.EmptyInstance());
  ASSERT_EQ(result.outcome, SolveOutcome::kSolutionFound);
  EXPECT_TRUE(IsSolution(setting_, source, setting_.EmptyInstance(),
                         *result.solution, symbols_));
  EXPECT_EQ(result.solution->ToString(symbols_), "H(a,a).");
}

TEST_F(GenericSolverTest, Example1FindsVerifiedSolution) {
  Instance source =
      ParseOrDie(setting_, "E(a,b). E(b,c). E(a,c).", &symbols_);
  GenericSolveResult result = Solve(source, setting_.EmptyInstance());
  ASSERT_EQ(result.outcome, SolveOutcome::kSolutionFound);
  EXPECT_TRUE(IsSolution(setting_, source, setting_.EmptyInstance(),
                         *result.solution, symbols_));
}

TEST_F(GenericSolverTest, EnumeratesMinimalSolutions) {
  Instance source =
      ParseOrDie(setting_, "E(a,b). E(b,c). E(a,c).", &symbols_);
  GenericSolverOptions options;
  options.enumerate_all = true;
  GenericSolveResult result = Unwrap(GenericExistsSolution(
      setting_, source, setting_.EmptyInstance(), &symbols_, options));
  ASSERT_EQ(result.outcome, SolveOutcome::kSolutionFound);
  // The unique minimal solution is {H(a,c)} (the only Σ_st requirement).
  ASSERT_EQ(result.solutions.size(), 1u);
  EXPECT_EQ(result.solutions[0].ToString(symbols_), "H(a,c).");
}

TEST_F(GenericSolverTest, RespectsExistingTargetData) {
  Instance source =
      ParseOrDie(setting_, "E(a,b). E(b,c). E(a,c).", &symbols_);
  Instance target = ParseOrDie(setting_, "H(a,b).", &symbols_);
  GenericSolveResult result = Solve(source, target);
  ASSERT_EQ(result.outcome, SolveOutcome::kSolutionFound);
  EXPECT_TRUE(target.IsSubsetOf(*result.solution));
  EXPECT_TRUE(
      IsSolution(setting_, source, target, *result.solution, symbols_));

  // H(b,a) can never be repaired: (b,a) is not an edge.
  Instance bad_target = ParseOrDie(setting_, "H(b,a).", &symbols_);
  EXPECT_EQ(Solve(source, bad_target).outcome, SolveOutcome::kNoSolution);
}

TEST_F(GenericSolverTest, HandlesTsExistentialsViaSourceWitnesses) {
  SymbolTable symbols;
  PdeSetting setting = MakePathSetting(&symbols);
  Instance source = ParseOrDie(setting, "E(a,b). E(b,c).", &symbols);
  GenericSolveResult result = Unwrap(GenericExistsSolution(
      setting, source, setting.EmptyInstance(), &symbols));
  ASSERT_EQ(result.outcome, SolveOutcome::kSolutionFound);
  EXPECT_TRUE(IsSolution(setting, source, setting.EmptyInstance(),
                         *result.solution, symbols));
}

TEST_F(GenericSolverTest, TargetEgdsMergeNulls) {
  SymbolTable symbols;
  // Σ_st invents a null for H's second column; the key egd then forces all
  // of a's H-successors to coincide; Σ_ts requires the merged value to be
  // an E-successor of a.
  auto setting = Unwrap(PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}},
      "E(x,y) -> exists z: H(x,z).",
      "H(x,y) -> E(x,y).",
      "H(x,y) & H(x,z) -> y = z.", &symbols));
  Instance source = ParseOrDie(setting, "E(a,b).", &symbols);
  GenericSolveResult result = Unwrap(GenericExistsSolution(
      setting, source, setting.EmptyInstance(), &symbols));
  ASSERT_EQ(result.outcome, SolveOutcome::kSolutionFound);
  EXPECT_TRUE(IsSolution(setting, source, setting.EmptyInstance(),
                         *result.solution, symbols));
  EXPECT_EQ(result.solution->ToString(symbols), "H(a,b).");

  // Two E-successors: the egd would force b = c on any solution covering
  // both... but H only needs *some* value per x, and b or c both work.
  Instance source2 = ParseOrDie(setting, "E(a,b). E(a,c).", &symbols);
  GenericSolveResult result2 = Unwrap(GenericExistsSolution(
      setting, source2, setting.EmptyInstance(), &symbols));
  EXPECT_EQ(result2.outcome, SolveOutcome::kSolutionFound);
}

TEST_F(GenericSolverTest, EgdConstantClashMeansNoSolution) {
  SymbolTable symbols;
  auto setting = Unwrap(PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}},
      "E(x,y) -> H(x,y).", "",
      "H(x,y) & H(x,z) -> y = z.", &symbols));
  Instance source = ParseOrDie(setting, "E(a,b). E(a,c).", &symbols);
  GenericSolveResult result = Unwrap(GenericExistsSolution(
      setting, source, setting.EmptyInstance(), &symbols));
  EXPECT_EQ(result.outcome, SolveOutcome::kNoSolution);
}

TEST_F(GenericSolverTest, WeaklyAcyclicTargetTgdsChaseThrough) {
  SymbolTable symbols;
  auto setting = Unwrap(PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}, {"F", 2}},
      "E(x,y) -> H(x,y).", "",
      "H(x,y) -> exists z: F(y,z).", &symbols));
  Instance source = ParseOrDie(setting, "E(a,b).", &symbols);
  GenericSolveResult result = Unwrap(GenericExistsSolution(
      setting, source, setting.EmptyInstance(), &symbols));
  ASSERT_EQ(result.outcome, SolveOutcome::kSolutionFound);
  EXPECT_TRUE(IsSolution(setting, source, setting.EmptyInstance(),
                         *result.solution, symbols));
}

TEST_F(GenericSolverTest, BudgetExhaustionIsReported) {
  Instance source =
      ParseOrDie(setting_, "E(a,b). E(b,c). E(a,c).", &symbols_);
  GenericSolverOptions options;
  options.max_nodes = 1;
  GenericSolveResult result = Unwrap(GenericExistsSolution(
      setting_, source, setting_.EmptyInstance(), &symbols_, options));
  EXPECT_EQ(result.outcome, SolveOutcome::kBudgetExhausted);
}

TEST_F(GenericSolverTest, DisjunctiveTsConstraintsRespected) {
  SymbolTable symbols;
  PdeSetting setting = Unwrap(MakeThreeColSetting(&symbols));
  // A triangle is 3-colorable.
  Instance triangle =
      MakeThreeColSourceInstance(setting, CompleteGraph(3), &symbols);
  GenericSolveResult yes = Unwrap(GenericExistsSolution(
      setting, triangle, setting.EmptyInstance(), &symbols));
  ASSERT_EQ(yes.outcome, SolveOutcome::kSolutionFound);
  EXPECT_TRUE(IsSolution(setting, triangle, setting.EmptyInstance(),
                         *yes.solution, symbols));
  // K4 is not 3-colorable.
  Instance k4 =
      MakeThreeColSourceInstance(setting, CompleteGraph(4), &symbols);
  GenericSolveResult no = Unwrap(GenericExistsSolution(
      setting, k4, setting.EmptyInstance(), &symbols));
  EXPECT_EQ(no.outcome, SolveOutcome::kNoSolution);
}

TEST_F(GenericSolverTest, EmptyInputsTriviallySolvable) {
  GenericSolveResult result =
      Solve(setting_.EmptyInstance(), setting_.EmptyInstance());
  ASSERT_EQ(result.outcome, SolveOutcome::kSolutionFound);
  EXPECT_EQ(result.solution->fact_count(), 0u);
}

// The search loop maintains its trigger candidates incrementally off each
// node's delta instead of rescanning the instance: on a copy setting over
// an E-path of length N, the search walks ~N nodes, and both instrumented
// quantities — body matches found by discovery and head-extension checks
// of cached candidates — must stay linear in N. A full-rescan loop pays
// Θ(N) matches per node, Θ(N²) total, which the bounds below reject by a
// wide margin.
TEST_F(GenericSolverTest, CandidateCacheScalesWithDeltaNotInstance) {
  SymbolTable symbols;
  PdeSetting setting = Unwrap(
      PdeSetting::Create({{"E", 2}}, {{"H", 2}}, "E(x,y) -> H(x,y).",
                         "H(x,y) -> E(x,y).", "", &symbols),
      "copy setting");
  auto solve_path = [&](int n) {
    std::string text;
    for (int i = 0; i < n; ++i) {
      text += "E(n" + std::to_string(i) + ",n" + std::to_string(i + 1) +
              "). ";
    }
    Instance source = ParseOrDie(setting, text, &symbols);
    return Unwrap(GenericExistsSolution(setting, source,
                                        setting.EmptyInstance(), &symbols));
  };
  for (int n : {20, 60}) {
    GenericSolveResult result = solve_path(n);
    ASSERT_EQ(result.outcome, SolveOutcome::kSolutionFound);
    // One node per fired copy trigger (plus root and leaf bookkeeping).
    EXPECT_LE(result.nodes_explored, n + 2);
    // Discovery: the root finds the N violated st triggers; each child
    // then discovers only the one ts trigger its new H-fact enables
    // (immediately satisfied and filtered). Linear, not quadratic.
    EXPECT_LE(result.candidates_discovered, 4 * n + 8) << "n = " << n;
    // Selection: along the path each candidate is checked once when it is
    // selected and once when it is found satisfied and marked — a rescan
    // loop would pay ~n²/2 here (already > the bound at n = 20).
    EXPECT_LE(result.candidate_checks, 4 * n + 8) << "n = " << n;
  }
}

}  // namespace
}  // namespace pdx
