// Cross-validation of the parallel delta chase against the sequential
// path over the full schedule matrix: schedule ∈ {barrier, speculative,
// dag} × num_threads ∈ {1, 2, 8} × compile_plans ∈ {on, off}, the chase
// must produce equivalent results on randomized workloads covering the
// tgd pipeline, the merge-heavy egd cascade, the oblivious engine,
// disjoint-footprint families, failing runs, the solver-level verdict,
// and auto-compaction. Barrier mode (the default) is bit-identical at
// fixed compile mode — same canonical fingerprint at every thread count;
// speculative and dag (worker-side head instantiation, concurrent ledger
// admission, footprint-DAG collect/apply overlap, sharded apply) hand
// out schedule-dependent null ids, so their results are asserted equal
// under canonical null renumbering
// (testing_util::CanonicalizedFingerprint) while outcome, steps,
// nulls_created and the resolved fact count stay exactly invariant
// across the whole matrix. The canonicalization helpers themselves are
// unit-tested below on hand-built instances (the refinement-level tests
// live in instance_hom_test.cc).
//
// These tests carry the `parallel` ctest label and are additionally run
// under TSan by tools/check.sh, which pins one schedule per lane
// (PDX_FORCE_SPECULATIVE=1, PDX_FORCE_SCHEDULE=dag) so each sanitized
// pass covers exactly that path — testing_util::SchedulesToTest()
// narrows the matrix accordingly. Sizes are deliberately modest so the
// TSan passes stay fast.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "chase/chase.h"
#include "logic/parser.h"
#include "pde/data_exchange.h"
#include "tests/test_util.h"
#include "workload/random.h"

namespace pdx {
namespace {

using testing_util::AssertHomEquivalent;
using testing_util::CanonicalizedFingerprint;
using testing_util::Unwrap;

constexpr int kThreadCounts[] = {1, 2, 8};
constexpr bool kCompileModes[] = {true, false};

using testing_util::SchedulesToTest;

// Trace tag for one cell of the schedule matrix.
std::string CellTag(uint64_t seed, int threads, ChaseSchedule schedule,
                    bool compile) {
  return "seed " + std::to_string(seed) + " threads " +
         std::to_string(threads) + " " + ScheduleName(schedule) +
         (compile ? " compiled" : " interpreted");
}

struct ParallelChaseTest : ::testing::Test {
  Schema schema;
  SymbolTable symbols;
  std::vector<Tgd> pipeline_tgds;
  std::vector<Tgd> egd_heavy_tgds;
  std::vector<Egd> egd_heavy_egds;
  std::vector<Tgd> copy_tgds;
  std::vector<Egd> key_egds;

  ParallelChaseTest() {
    PDX_CHECK(schema.AddRelation("E", 2).ok());
    PDX_CHECK(schema.AddRelation("H", 2).ok());
    PDX_CHECK(schema.AddRelation("F", 2).ok());
    // Same dependency shapes as bench_chase: a weakly acyclic pipeline
    // with an existential tail, and the merge-heavy cascade where nearly
    // every step is a union.
    pipeline_tgds = Deps("E(x,z) & E(z,y) -> H(x,y)."
                         "H(x,y) -> exists w: F(y,w).")
                        .tgds;
    auto heavy = Deps("E(x,y) -> exists z: H(x,z) & F(y,z).");
    egd_heavy_tgds = heavy.tgds;
    egd_heavy_egds =
        Deps("H(x,y) & H(x,z) -> y = z. F(x,y) & F(x,z) -> y = z.").egds;
    // Constant-copying tgd + key egd: clashes two constants whenever a
    // node has two distinct successors, so dense random graphs fail.
    copy_tgds = Deps("E(x,y) -> H(x,y).").tgds;
    key_egds = Deps("H(x,y) & H(x,z) -> y = z.").egds;
  }

  DependencySet Deps(const std::string& text) {
    return Unwrap(ParseDependencies(text, schema, &symbols), "deps");
  }

  Instance RandomEdges(int n, int edges_per_node, uint64_t seed) {
    Rng rng(seed);
    Instance instance(&schema);
    for (int i = 0; i < edges_per_node * n; ++i) {
      Value u =
          symbols.InternConstant("n" + std::to_string(rng.UniformInt(n)));
      Value v =
          symbols.InternConstant("n" + std::to_string(rng.UniformInt(n)));
      instance.AddFact(0, {u, v});
    }
    return instance;
  }

  ChaseResult Run(const Instance& start, const std::vector<Tgd>& tgds,
                  const std::vector<Egd>& egds, int threads,
                  ChaseStrategy strategy = ChaseStrategy::kRestricted,
                  ChaseSchedule schedule = ChaseSchedule::kBarrier,
                  bool compile = true) {
    ChaseOptions options;
    options.strategy = strategy;
    options.num_threads = threads;
    options.schedule = schedule;
    options.compile_plans = compile;
    return Chase(start, tgds, egds, &symbols, options);
  }

  // Runs the workload over the full schedule × threads × compile matrix
  // and asserts all observable results match the single-threaded barrier
  // reference: exactly in barrier mode (bit-identity holds per compile
  // mode — compiled and interpreted enumeration orders differ, so each
  // gets its own exact reference), up to canonical null renumbering under
  // speculative/dag (outcome, steps, nulls, the resolved fact count and
  // the canonicalized fingerprint stay invariant across the whole
  // matrix, compile modes included).
  void ExpectThreadInvariant(const Instance& start,
                             const std::vector<Tgd>& tgds,
                             const std::vector<Egd>& egds,
                             ChaseStrategy strategy, uint64_t seed) {
    ChaseResult ref0 = Run(start, tgds, egds, /*threads=*/1, strategy);
    uint64_t ref_canonical = CanonicalizedFingerprint(ref0.instance);
    for (bool compile : kCompileModes) {
      ChaseResult ref =
          Run(start, tgds, egds, /*threads=*/1, strategy,
              ChaseSchedule::kBarrier, compile);
      SCOPED_TRACE(std::string("reference, ") +
                   (compile ? "compiled" : "interpreted") + ", seed " +
                   std::to_string(seed));
      ASSERT_EQ(ref.outcome, ref0.outcome);
      ASSERT_EQ(ref.steps, ref0.steps);
      ASSERT_EQ(ref.nulls_created, ref0.nulls_created);
      ASSERT_EQ(CanonicalizedFingerprint(ref.instance), ref_canonical);
      uint64_t ref_fp = ref.instance.CanonicalFingerprint();
      for (ChaseSchedule schedule : SchedulesToTest()) {
        for (int threads : kThreadCounts) {
          ChaseResult got =
              Run(start, tgds, egds, threads, strategy, schedule, compile);
          SCOPED_TRACE(CellTag(seed, threads, schedule, compile));
          ASSERT_EQ(got.outcome, ref.outcome);
          ASSERT_EQ(got.steps, ref.steps);
          ASSERT_EQ(got.nulls_created, ref.nulls_created);
          ASSERT_EQ(got.instance.ResolvedFactCount(),
                    ref.instance.ResolvedFactCount());
          if (schedule == ChaseSchedule::kBarrier) {
            ASSERT_EQ(got.instance.CanonicalFingerprint(), ref_fp);
          } else {
            ASSERT_EQ(CanonicalizedFingerprint(got.instance), ref_canonical);
          }
        }
      }
    }
  }
};

TEST_F(ParallelChaseTest, PipelineIsThreadInvariant) {
  for (uint64_t seed : {17u, 18u, 19u}) {
    Instance start = RandomEdges(48, 2, seed);
    ExpectThreadInvariant(start, pipeline_tgds, {},
                          ChaseStrategy::kRestricted, seed);
  }
}

TEST_F(ParallelChaseTest, EgdHeavyIsThreadInvariant) {
  for (uint64_t seed : {29u, 30u, 31u}) {
    Instance start = RandomEdges(32, 3, seed);
    ExpectThreadInvariant(start, egd_heavy_tgds, egd_heavy_egds,
                          ChaseStrategy::kRestricted, seed);
  }
}

TEST_F(ParallelChaseTest, ObliviousIsThreadInvariant) {
  for (uint64_t seed : {41u, 42u}) {
    Instance start = RandomEdges(24, 2, seed);
    ExpectThreadInvariant(start, pipeline_tgds, {},
                          ChaseStrategy::kOblivious, seed);
    ExpectThreadInvariant(start, egd_heavy_tgds, egd_heavy_egds,
                          ChaseStrategy::kOblivious, seed);
  }
}

// A multi-dependency workload whose tgd families have pairwise disjoint
// relation footprints (the shape of bench_chase's disjoint_4x), so the
// footprint-DAG scheduler actually overlaps collection with application
// across families and the sharded apply distributes inserts over four
// target relations. Exercises the collect-ahead and shard paths rather
// than leaving them to footprint luck in the other workloads.
TEST_F(ParallelChaseTest, DisjointDependenciesPipelineIsThreadInvariant) {
  Schema wide;
  SymbolTable wide_symbols;
  for (const char* name : {"A0", "B0", "A1", "B1", "A2", "B2", "A3", "B3"}) {
    PDX_CHECK(wide.AddRelation(name, 2).ok());
  }
  DependencySet deps = Unwrap(
      ParseDependencies("A0(x,y) & A0(y,z) -> exists w: B0(x,w)."
                        "A1(x,y) & A1(y,z) -> exists w: B1(x,w)."
                        "A2(x,y) & A2(y,z) -> exists w: B2(x,w)."
                        "A3(x,y) & A3(y,z) -> exists w: B3(x,w).",
                        wide, &wide_symbols),
      "wide deps");
  for (uint64_t seed : {7u, 8u}) {
    Rng rng(seed);
    Instance start(&wide);
    for (RelationId r : {0, 2, 4, 6}) {
      for (int i = 0; i < 64; ++i) {
        Value u = wide_symbols.InternConstant("n" +
                                              std::to_string(rng.UniformInt(24)));
        Value v = wide_symbols.InternConstant("n" +
                                              std::to_string(rng.UniformInt(24)));
        start.AddFact(r, {u, v});
      }
    }
    for (bool compile : kCompileModes) {
      ChaseOptions ref_options;
      ref_options.num_threads = 1;
      ref_options.compile_plans = compile;
      ChaseResult ref = Chase(start, deps.tgds, {}, &wide_symbols, ref_options);
      ASSERT_EQ(ref.outcome, ChaseOutcome::kSuccess);
      uint64_t ref_fp = ref.instance.CanonicalFingerprint();
      uint64_t ref_canonical = CanonicalizedFingerprint(ref.instance);
      for (ChaseSchedule schedule : SchedulesToTest()) {
        for (int threads : kThreadCounts) {
          ChaseOptions options;
          options.num_threads = threads;
          options.schedule = schedule;
          options.compile_plans = compile;
          ChaseResult got = Chase(start, deps.tgds, {}, &wide_symbols, options);
          SCOPED_TRACE(CellTag(seed, threads, schedule, compile));
          ASSERT_EQ(got.outcome, ref.outcome);
          ASSERT_EQ(got.steps, ref.steps);
          ASSERT_EQ(got.nulls_created, ref.nulls_created);
          if (schedule == ChaseSchedule::kBarrier) {
            ASSERT_EQ(got.instance.CanonicalFingerprint(), ref_fp);
          } else {
            ASSERT_EQ(CanonicalizedFingerprint(got.instance), ref_canonical);
          }
        }
      }
    }
  }
}

// Constant/constant clashes: the batched egd path may apply merges in a
// different order than the sequential scan, but whether the closure holds
// a clash is order-independent, so the verdict must agree. (Step counts
// of failing runs are not comparable across orders and are not asserted.)
TEST_F(ParallelChaseTest, FailingRunsAgreeOnOutcome) {
  int failures = 0;
  for (uint64_t seed = 50; seed < 58; ++seed) {
    Instance start = RandomEdges(16, 2, seed);
    ChaseResult ref = Run(start, copy_tgds, key_egds, /*threads=*/1);
    if (ref.outcome == ChaseOutcome::kFailed) ++failures;
    for (bool compile : kCompileModes) {
      ChaseResult compile_ref =
          Run(start, copy_tgds, key_egds, /*threads=*/1,
              ChaseStrategy::kRestricted, ChaseSchedule::kBarrier, compile);
      ASSERT_EQ(compile_ref.outcome, ref.outcome);
      for (ChaseSchedule schedule : SchedulesToTest()) {
        for (int threads : kThreadCounts) {
          ChaseResult got =
              Run(start, copy_tgds, key_egds, threads,
                  ChaseStrategy::kRestricted, schedule, compile);
          SCOPED_TRACE(CellTag(seed, threads, schedule, compile));
          ASSERT_EQ(got.outcome, ref.outcome);
          if (ref.outcome == ChaseOutcome::kSuccess) {
            if (schedule == ChaseSchedule::kBarrier) {
              ASSERT_EQ(got.instance.CanonicalFingerprint(),
                        compile_ref.instance.CanonicalFingerprint());
            } else {
              ASSERT_EQ(CanonicalizedFingerprint(got.instance),
                        CanonicalizedFingerprint(ref.instance));
            }
          }
        }
      }
    }
  }
  // Dense random graphs with a key egd over copied constants must clash
  // on at least some seeds for this test to mean anything.
  EXPECT_GT(failures, 0);
}

// Solver-level verdicts through SolveDataExchange: solution existence and
// the universal solution itself must not depend on num_threads or on
// speculative execution.
TEST_F(ParallelChaseTest, DataExchangeVerdictsAreThreadInvariant) {
  SymbolTable de_symbols;
  PdeSetting setting = Unwrap(
      PdeSetting::Create({{"E", 2}}, {{"H", 2}, {"F", 2}},
                         "E(x,y) -> H(x,y). E(x,y) -> exists z: F(x,z).",
                         "", "H(x,y) & H(x,z) -> y = z.", &de_symbols),
      "de setting");
  int with_solution = 0, without = 0;
  for (uint64_t seed = 70; seed < 78; ++seed) {
    Rng rng(seed);
    Instance source = setting.EmptyInstance();
    RelationId e_rel = setting.schema().FindRelation("E").value();
    auto node = [&](const std::string& tag) {
      return de_symbols.InternConstant("c" + tag);
    };
    // Even seeds: a functional random graph (one successor per node), so
    // the key egd never clashes and a solution exists. Odd seeds: the
    // same plus a forked node, so the copied constants must clash.
    for (int i = 0; i < 12; ++i) {
      source.AddFact(e_rel, {node(std::to_string(i)),
                             node(std::to_string(rng.UniformInt(12)))});
    }
    if (seed % 2 == 1) {
      source.AddFact(e_rel, {node("fork"), node("left")});
      source.AddFact(e_rel, {node("fork"), node("right")});
    }
    ChaseOptions ref_options;
    ref_options.num_threads = 1;
    DataExchangeResult ref =
        Unwrap(SolveDataExchange(setting, source, setting.EmptyInstance(),
                                 &de_symbols, ref_options),
               "SolveDataExchange");
    (ref.has_solution ? with_solution : without)++;
    for (ChaseSchedule schedule : SchedulesToTest()) {
      for (int threads : kThreadCounts) {
        ChaseOptions options;
        options.num_threads = threads;
        options.schedule = schedule;
        DataExchangeResult got =
            Unwrap(SolveDataExchange(setting, source, setting.EmptyInstance(),
                                     &de_symbols, options),
                   "SolveDataExchange");
        SCOPED_TRACE(CellTag(seed, threads, schedule, /*compile=*/true));
        ASSERT_EQ(got.has_solution, ref.has_solution);
        if (ref.has_solution) {
          ASSERT_EQ(got.nulls_created, ref.nulls_created);
          if (schedule == ChaseSchedule::kBarrier) {
            ASSERT_EQ(got.universal_solution->CanonicalFingerprint(),
                      ref.universal_solution->CanonicalFingerprint());
          } else {
            ASSERT_EQ(CanonicalizedFingerprint(*got.universal_solution),
                      CanonicalizedFingerprint(*ref.universal_solution));
          }
        }
      }
    }
  }
  // The seeds must exercise both verdicts.
  EXPECT_GT(with_solution, 0);
  EXPECT_GT(without, 0);
}

// Auto-compaction must fire on merge-heavy runs when the thresholds are
// lowered, without changing any observable result, and merged values must
// still resolve through the compacted instance.
TEST_F(ParallelChaseTest, CompactionPreservesResults) {
  Instance start = RandomEdges(32, 3, 91);
  ChaseOptions plain;
  plain.num_threads = 1;
  plain.compact_duplicate_ratio = 0;  // outside (0,1): disabled
  ChaseResult no_compact =
      Chase(start, egd_heavy_tgds, egd_heavy_egds, &symbols, plain);
  EXPECT_EQ(no_compact.compactions, 0);

  for (ChaseSchedule schedule : SchedulesToTest()) {
    for (int threads : kThreadCounts) {
      ChaseOptions options;
      options.num_threads = threads;
      options.schedule = schedule;
      options.compact_duplicate_ratio = 0.2;
      options.compact_min_facts = 32;
      ChaseResult got =
          Chase(start, egd_heavy_tgds, egd_heavy_egds, &symbols, options);
      SCOPED_TRACE(std::string("threads ") + std::to_string(threads) + " " +
                   ScheduleName(schedule));
      ASSERT_EQ(got.outcome, ChaseOutcome::kSuccess);
      EXPECT_GT(got.compactions, 0);
      ASSERT_EQ(got.steps, no_compact.steps);
      if (schedule == ChaseSchedule::kBarrier) {
        ASSERT_EQ(got.instance.CanonicalFingerprint(),
                  no_compact.instance.CanonicalFingerprint());
      } else {
        ASSERT_EQ(CanonicalizedFingerprint(got.instance),
                  CanonicalizedFingerprint(no_compact.instance));
      }
      // Compaction drops resolved duplicates from the raw stores, and the
      // resolved view is untouched.
      EXPECT_LE(got.instance.fact_count(), no_compact.instance.fact_count());
      ASSERT_EQ(got.instance.ResolvedFactCount(),
                no_compact.instance.ResolvedFactCount());
    }
  }
}

// --- The canonicalization harness itself -------------------------------

// The case raw CanonicalFingerprint gets wrong: two nulls in symmetric
// positions within the sort (same relation, same null pattern, same
// constants) are tie-broken by their original ids, so renaming them can
// change the raw fingerprint of what is one isomorphism class. The
// canonicalized fingerprint must agree, because refinement separates the
// null that also occurs in F from the one that does not.
TEST_F(ParallelChaseTest, CanonicalizedFingerprintIsRenamingInvariant) {
  Value c = symbols.InternConstant("c");
  Value d = symbols.InternConstant("d");
  Value n0 = Value::Null(1000), n1 = Value::Null(1001);
  RelationId h = 1, f = 2;
  Instance a(&schema);
  a.AddFact(h, {c, n0});
  a.AddFact(h, {c, n1});
  a.AddFact(f, {n1, d});
  Instance b(&schema);  // same instance under the renaming n0 <-> n1
  b.AddFact(h, {c, n1});
  b.AddFact(h, {c, n0});
  b.AddFact(f, {n0, d});
  EXPECT_NE(a.CanonicalFingerprint(), b.CanonicalFingerprint())
      << "expected the raw fingerprint's id tie-break to differ here; if "
         "this ever becomes equal the raw fingerprint got stronger and "
         "this demonstration needs a new example";
  EXPECT_EQ(CanonicalizedFingerprint(a), CanonicalizedFingerprint(b));
  AssertHomEquivalent(a, b, "symmetric tie case");
}

// Hom-equivalence is weaker than isomorphism: AssertHomEquivalent accepts
// a pair that canonicalized fingerprints (correctly) distinguish.
TEST_F(ParallelChaseTest, HomEquivalentInstancesNeedNotBeIsomorphic) {
  Value c = symbols.InternConstant("c");
  Value n0 = Value::Null(2000), n1 = Value::Null(2001);
  Instance a(&schema);
  a.AddFact(0, {c, n0});
  Instance b(&schema);
  b.AddFact(0, {c, n0});
  b.AddFact(0, {c, n1});  // folds onto the first under n1 -> n0
  AssertHomEquivalent(a, b, "redundant-fact pair");
  EXPECT_NE(CanonicalizedFingerprint(a), CanonicalizedFingerprint(b));
}

TEST_F(ParallelChaseTest, CanonicalizedFingerprintSeparatesNonIsomorphic) {
  Value n0 = Value::Null(3000), n1 = Value::Null(3001);
  Instance loop(&schema);
  loop.AddFact(0, {n0, n0});
  Instance edge(&schema);
  edge.AddFact(0, {n0, n1});
  EXPECT_NE(CanonicalizedFingerprint(loop), CanonicalizedFingerprint(edge));
}

}  // namespace
}  // namespace pdx
