// Cross-validation of the parallel delta chase against the sequential
// path: for num_threads ∈ {1, 2, 8} the chase must produce identical
// results — same outcome, step count, nulls created and canonical
// fingerprint — on randomized workloads covering the tgd pipeline, the
// merge-heavy egd cascade, the oblivious engine, failing runs, the
// solver-level verdict, and auto-compaction. These tests carry the
// `parallel` ctest label and are additionally run under TSan by
// tools/check.sh. Sizes are deliberately modest so the TSan pass stays
// fast.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "chase/chase.h"
#include "logic/parser.h"
#include "pde/data_exchange.h"
#include "tests/test_util.h"
#include "workload/random.h"

namespace pdx {
namespace {

using testing_util::Unwrap;

constexpr int kThreadCounts[] = {1, 2, 8};

struct ParallelChaseTest : ::testing::Test {
  Schema schema;
  SymbolTable symbols;
  std::vector<Tgd> pipeline_tgds;
  std::vector<Tgd> egd_heavy_tgds;
  std::vector<Egd> egd_heavy_egds;
  std::vector<Tgd> copy_tgds;
  std::vector<Egd> key_egds;

  ParallelChaseTest() {
    PDX_CHECK(schema.AddRelation("E", 2).ok());
    PDX_CHECK(schema.AddRelation("H", 2).ok());
    PDX_CHECK(schema.AddRelation("F", 2).ok());
    // Same dependency shapes as bench_chase: a weakly acyclic pipeline
    // with an existential tail, and the merge-heavy cascade where nearly
    // every step is a union.
    pipeline_tgds = Deps("E(x,z) & E(z,y) -> H(x,y)."
                         "H(x,y) -> exists w: F(y,w).")
                        .tgds;
    auto heavy = Deps("E(x,y) -> exists z: H(x,z) & F(y,z).");
    egd_heavy_tgds = heavy.tgds;
    egd_heavy_egds =
        Deps("H(x,y) & H(x,z) -> y = z. F(x,y) & F(x,z) -> y = z.").egds;
    // Constant-copying tgd + key egd: clashes two constants whenever a
    // node has two distinct successors, so dense random graphs fail.
    copy_tgds = Deps("E(x,y) -> H(x,y).").tgds;
    key_egds = Deps("H(x,y) & H(x,z) -> y = z.").egds;
  }

  DependencySet Deps(const std::string& text) {
    return Unwrap(ParseDependencies(text, schema, &symbols), "deps");
  }

  Instance RandomEdges(int n, int edges_per_node, uint64_t seed) {
    Rng rng(seed);
    Instance instance(&schema);
    for (int i = 0; i < edges_per_node * n; ++i) {
      Value u =
          symbols.InternConstant("n" + std::to_string(rng.UniformInt(n)));
      Value v =
          symbols.InternConstant("n" + std::to_string(rng.UniformInt(n)));
      instance.AddFact(0, {u, v});
    }
    return instance;
  }

  ChaseResult Run(const Instance& start, const std::vector<Tgd>& tgds,
                  const std::vector<Egd>& egds, int threads,
                  ChaseStrategy strategy = ChaseStrategy::kRestricted) {
    ChaseOptions options;
    options.strategy = strategy;
    options.num_threads = threads;
    return Chase(start, tgds, egds, &symbols, options);
  }

  // Runs the workload at every thread count and asserts all observable
  // results match the single-threaded reference exactly.
  void ExpectThreadInvariant(const Instance& start,
                             const std::vector<Tgd>& tgds,
                             const std::vector<Egd>& egds,
                             ChaseStrategy strategy, uint64_t seed) {
    ChaseResult ref = Run(start, tgds, egds, /*threads=*/1, strategy);
    uint64_t ref_fp = ref.instance.CanonicalFingerprint();
    for (int threads : kThreadCounts) {
      ChaseResult got = Run(start, tgds, egds, threads, strategy);
      ASSERT_EQ(got.outcome, ref.outcome)
          << "seed " << seed << " threads " << threads;
      ASSERT_EQ(got.steps, ref.steps)
          << "seed " << seed << " threads " << threads;
      ASSERT_EQ(got.nulls_created, ref.nulls_created)
          << "seed " << seed << " threads " << threads;
      ASSERT_EQ(got.instance.CanonicalFingerprint(), ref_fp)
          << "seed " << seed << " threads " << threads;
      ASSERT_EQ(got.instance.ResolvedFactCount(),
                ref.instance.ResolvedFactCount())
          << "seed " << seed << " threads " << threads;
    }
  }
};

TEST_F(ParallelChaseTest, PipelineIsThreadInvariant) {
  for (uint64_t seed : {17u, 18u, 19u}) {
    Instance start = RandomEdges(48, 2, seed);
    ExpectThreadInvariant(start, pipeline_tgds, {},
                          ChaseStrategy::kRestricted, seed);
  }
}

TEST_F(ParallelChaseTest, EgdHeavyIsThreadInvariant) {
  for (uint64_t seed : {29u, 30u, 31u}) {
    Instance start = RandomEdges(32, 3, seed);
    ExpectThreadInvariant(start, egd_heavy_tgds, egd_heavy_egds,
                          ChaseStrategy::kRestricted, seed);
  }
}

TEST_F(ParallelChaseTest, ObliviousIsThreadInvariant) {
  for (uint64_t seed : {41u, 42u}) {
    Instance start = RandomEdges(24, 2, seed);
    ExpectThreadInvariant(start, pipeline_tgds, {},
                          ChaseStrategy::kOblivious, seed);
    ExpectThreadInvariant(start, egd_heavy_tgds, egd_heavy_egds,
                          ChaseStrategy::kOblivious, seed);
  }
}

// Constant/constant clashes: the batched egd path may apply merges in a
// different order than the sequential scan, but whether the closure holds
// a clash is order-independent, so the verdict must agree. (Step counts
// of failing runs are not comparable across orders and are not asserted.)
TEST_F(ParallelChaseTest, FailingRunsAgreeOnOutcome) {
  int failures = 0;
  for (uint64_t seed = 50; seed < 58; ++seed) {
    Instance start = RandomEdges(16, 2, seed);
    ChaseResult ref = Run(start, copy_tgds, key_egds, /*threads=*/1);
    if (ref.outcome == ChaseOutcome::kFailed) ++failures;
    for (int threads : kThreadCounts) {
      ChaseResult got = Run(start, copy_tgds, key_egds, threads);
      ASSERT_EQ(got.outcome, ref.outcome)
          << "seed " << seed << " threads " << threads;
      if (ref.outcome == ChaseOutcome::kSuccess) {
        ASSERT_EQ(got.instance.CanonicalFingerprint(),
                  ref.instance.CanonicalFingerprint())
            << "seed " << seed << " threads " << threads;
      }
    }
  }
  // Dense random graphs with a key egd over copied constants must clash
  // on at least some seeds for this test to mean anything.
  EXPECT_GT(failures, 0);
}

// Solver-level verdicts through SolveDataExchange: solution existence and
// the universal solution itself must not depend on num_threads.
TEST_F(ParallelChaseTest, DataExchangeVerdictsAreThreadInvariant) {
  SymbolTable de_symbols;
  PdeSetting setting = Unwrap(
      PdeSetting::Create({{"E", 2}}, {{"H", 2}, {"F", 2}},
                         "E(x,y) -> H(x,y). E(x,y) -> exists z: F(x,z).",
                         "", "H(x,y) & H(x,z) -> y = z.", &de_symbols),
      "de setting");
  int with_solution = 0, without = 0;
  for (uint64_t seed = 70; seed < 78; ++seed) {
    Rng rng(seed);
    Instance source = setting.EmptyInstance();
    RelationId e_rel = setting.schema().FindRelation("E").value();
    auto node = [&](const std::string& tag) {
      return de_symbols.InternConstant("c" + tag);
    };
    // Even seeds: a functional random graph (one successor per node), so
    // the key egd never clashes and a solution exists. Odd seeds: the
    // same plus a forked node, so the copied constants must clash.
    for (int i = 0; i < 12; ++i) {
      source.AddFact(e_rel, {node(std::to_string(i)),
                             node(std::to_string(rng.UniformInt(12)))});
    }
    if (seed % 2 == 1) {
      source.AddFact(e_rel, {node("fork"), node("left")});
      source.AddFact(e_rel, {node("fork"), node("right")});
    }
    ChaseOptions ref_options;
    ref_options.num_threads = 1;
    DataExchangeResult ref =
        Unwrap(SolveDataExchange(setting, source, setting.EmptyInstance(),
                                 &de_symbols, ref_options),
               "SolveDataExchange");
    (ref.has_solution ? with_solution : without)++;
    for (int threads : kThreadCounts) {
      ChaseOptions options;
      options.num_threads = threads;
      DataExchangeResult got =
          Unwrap(SolveDataExchange(setting, source, setting.EmptyInstance(),
                                   &de_symbols, options),
                 "SolveDataExchange");
      ASSERT_EQ(got.has_solution, ref.has_solution)
          << "seed " << seed << " threads " << threads;
      if (ref.has_solution) {
        ASSERT_EQ(got.universal_solution->CanonicalFingerprint(),
                  ref.universal_solution->CanonicalFingerprint())
            << "seed " << seed << " threads " << threads;
        ASSERT_EQ(got.nulls_created, ref.nulls_created)
            << "seed " << seed << " threads " << threads;
      }
    }
  }
  // The seeds must exercise both verdicts.
  EXPECT_GT(with_solution, 0);
  EXPECT_GT(without, 0);
}

// Auto-compaction must fire on merge-heavy runs when the thresholds are
// lowered, without changing any observable result, and merged values must
// still resolve through the compacted instance.
TEST_F(ParallelChaseTest, CompactionPreservesResults) {
  Instance start = RandomEdges(32, 3, 91);
  ChaseOptions plain;
  plain.num_threads = 1;
  plain.compact_duplicate_ratio = 0;  // outside (0,1): disabled
  ChaseResult no_compact =
      Chase(start, egd_heavy_tgds, egd_heavy_egds, &symbols, plain);
  EXPECT_EQ(no_compact.compactions, 0);

  for (int threads : kThreadCounts) {
    ChaseOptions options;
    options.num_threads = threads;
    options.compact_duplicate_ratio = 0.2;
    options.compact_min_facts = 32;
    ChaseResult got =
        Chase(start, egd_heavy_tgds, egd_heavy_egds, &symbols, options);
    ASSERT_EQ(got.outcome, ChaseOutcome::kSuccess) << "threads " << threads;
    EXPECT_GT(got.compactions, 0) << "threads " << threads;
    ASSERT_EQ(got.instance.CanonicalFingerprint(),
              no_compact.instance.CanonicalFingerprint())
        << "threads " << threads;
    ASSERT_EQ(got.steps, no_compact.steps) << "threads " << threads;
    // Compaction drops resolved duplicates from the raw stores, and the
    // resolved view is untouched.
    EXPECT_LE(got.instance.fact_count(), no_compact.instance.fact_count());
    ASSERT_EQ(got.instance.ResolvedFactCount(),
              no_compact.instance.ResolvedFactCount());
  }
}

}  // namespace
}  // namespace pdx
