// Dependency compiler tests: IR goldens for the pass pipeline (atom
// reordering, access-path selection, delta specialization, apply
// templates), PlanCache behavior and its metrics, executor-vs-interpreter
// match-set equality (including resolve-on-read under merges and the
// semi-naive delta restriction), and the solver cache criterion — node
// re-chases of one setting compile it exactly once per process.

#include "plan/compiler.h"

#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "chase/chase.h"
#include "hom/matcher.h"
#include "logic/parser.h"
#include "obs/metrics.h"
#include "pde/generic_solver.h"
#include "pde/setting.h"
#include "plan/ir.h"
#include "plan/plan_cache.h"
#include "tests/test_util.h"

namespace pdx {
namespace {

using testing_util::Unwrap;

class PlanCompilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.AddRelation("E", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("H", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("F", 2).ok());
  }

  std::vector<Tgd> ParseTgds(const char* text) {
    auto deps = ParseDependencies(text, schema_, &symbols_);
    EXPECT_TRUE(deps.ok()) << deps.status().ToString();
    return std::move(deps).value().tgds;
  }

  Schema schema_;
  SymbolTable symbols_;
};

// --- IR goldens ----------------------------------------------------------

TEST_F(PlanCompilerTest, JoinOrderScansFirstAtomThenProbesSharedVariable) {
  // E(x,z) & E(z,y): nothing bound initially, so the greedy order keeps
  // atom 0 first (tie on bound-term count broken by original index) as a
  // scan; atom 1 then has z bound and probes position 0 with it.
  std::vector<Tgd> tgds = ParseTgds("E(x,z) & E(z,y) -> H(x,y).");
  ASSERT_EQ(tgds.size(), 1u);
  const Tgd& tgd = tgds[0];
  plan::BodyPlan body = plan::CompileBody(tgd.body, tgd.var_count, {});

  ASSERT_EQ(body.full.size(), 2u);
  EXPECT_EQ(body.atom_count, 2);
  EXPECT_EQ(body.var_count, tgd.var_count);
  EXPECT_EQ(body.full[0].atom_index, 0);
  EXPECT_EQ(body.full[0].access.kind, plan::AccessPath::kScan);
  EXPECT_EQ(body.full[1].atom_index, 1);
  EXPECT_EQ(body.full[1].access.kind, plan::AccessPath::kProbeVar);
  EXPECT_EQ(body.full[1].access.pos, 0);
  // The probe variable is the one atom 0 and atom 1 share: z, the second
  // term of atom 0.
  ASSERT_TRUE(tgd.body[0].terms[1].is_variable());
  EXPECT_EQ(body.full[1].access.var, tgd.body[0].terms[1].var());
  // The probed position is skipped in the step's unification program.
  ASSERT_EQ(body.full[1].ops.size(), 1u);
  EXPECT_EQ(body.full[1].ops[0].pos, 1);
  EXPECT_EQ(body.full[1].ops[0].kind, plan::SlotOp::kBind);
}

TEST_F(PlanCompilerTest, ConstantTermsSelectProbeConstAndCheckConst) {
  auto query = ParseQuery("q(x) :- E('a', x) & H(x, 'b').", schema_,
                          &symbols_);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  plan::BodyPlan body =
      plan::CompileBody(query->body, query->var_count, {});

  // Both atoms have one bound (constant) term; the tie goes to atom 0,
  // which probes its constant; atom 1 then has x bound — a bound-variable
  // probe is preferred over its constant.
  ASSERT_EQ(body.full.size(), 2u);
  EXPECT_EQ(body.full[0].atom_index, 0);
  EXPECT_EQ(body.full[0].access.kind, plan::AccessPath::kProbeConst);
  EXPECT_EQ(body.full[0].access.pos, 0);
  EXPECT_EQ(body.full[0].access.key, symbols_.InternConstant("a"));
  EXPECT_EQ(body.full[1].atom_index, 1);
  EXPECT_EQ(body.full[1].access.kind, plan::AccessPath::kProbeVar);
  EXPECT_EQ(body.full[1].access.pos, 0);
  // Atom 1's remaining op checks the constant 'b' at position 1.
  ASSERT_EQ(body.full[1].ops.size(), 1u);
  EXPECT_EQ(body.full[1].ops[0].kind, plan::SlotOp::kCheckConst);
  EXPECT_EQ(body.full[1].ops[0].key, symbols_.InternConstant("b"));
}

TEST_F(PlanCompilerTest, DeltaSpecializationEmitsOneVariantPerAtom) {
  std::vector<Tgd> tgds =
      ParseTgds("E(x,z) & E(z,y) & H(y,w) -> F(x,w).");
  const Tgd& tgd = tgds[0];
  plan::BodyPlan body = plan::CompileBody(tgd.body, tgd.var_count, {});

  ASSERT_EQ(body.variants.size(), tgd.body.size());
  for (size_t i = 0; i < body.variants.size(); ++i) {
    const plan::DeltaVariant& variant = body.variants[i];
    EXPECT_EQ(variant.pivot, static_cast<int>(i));
    EXPECT_EQ(variant.pivot_relation, tgd.body[i].relation);
    // The pivot is unified up front; the rest joins the other atoms.
    EXPECT_EQ(variant.rest.size(), tgd.body.size() - 1);
    std::set<int> rest_atoms;
    for (const plan::JoinStep& step : variant.rest) {
      rest_atoms.insert(step.atom_index);
    }
    EXPECT_EQ(rest_atoms.size(), variant.rest.size());
    EXPECT_EQ(rest_atoms.count(static_cast<int>(i)), 0u);
  }
}

TEST_F(PlanCompilerTest, ApplyTemplateCapturesHeadShapeAndExistentials) {
  std::vector<Tgd> tgds =
      ParseTgds("E(x,y) -> exists z, w: H(x,z) & F(z,w).");
  const Tgd& tgd = tgds[0];
  plan::TgdPlan plan = plan::CompileTgd(tgd);
  const plan::ApplyTemplate& apply = plan.apply;

  EXPECT_EQ(apply.head_width, 4u);
  EXPECT_EQ(apply.fresh_per_trigger, 2);
  ASSERT_EQ(apply.existentials.size(), 2u);
  // Ascending variable order — the interpreter invents fresh nulls in that
  // order, and the speculative layouts rely on it.
  EXPECT_LT(apply.existentials[0], apply.existentials[1]);
  // Flat head row: H(x,z) F(z,w) -> slots 1 and 2 hold z, slot 3 holds w.
  ASSERT_EQ(apply.slots.size(), 4u);
  EXPECT_FALSE(apply.slots[0].is_const);
  EXPECT_EQ(apply.slots[0].exist, -1);
  EXPECT_EQ(apply.slots[1].exist, 0);
  EXPECT_EQ(apply.slots[2].exist, 0);
  EXPECT_EQ(apply.slots[3].exist, 1);
  ASSERT_EQ(apply.head_null_slots.size(), 3u);
  EXPECT_EQ(apply.head_null_slots[0].first, 1u);
  EXPECT_EQ(apply.head_null_slots[1].first, 2u);
  EXPECT_EQ(apply.head_null_slots[2].first, 3u);
  ASSERT_EQ(apply.head_atoms.size(), 2u);
  EXPECT_EQ(apply.head_atoms[0].relation, tgd.head[0].relation);
  EXPECT_EQ(apply.head_atoms[0].arity, 2);
  // body_bound marks exactly the universal variables.
  ASSERT_EQ(apply.body_bound.size(), static_cast<size_t>(tgd.var_count));
  for (int v = 0; v < tgd.var_count; ++v) {
    EXPECT_EQ(apply.body_bound[v], !tgd.existential[v]) << "var " << v;
  }
}

TEST_F(PlanCompilerTest, HeadPlanProbesWithUniversalVariablesBound) {
  // The head plan backs the restricted engine's satisfaction check: it is
  // compiled with the universal variables pre-bound, so the head atom
  // probes one of them instead of scanning.
  std::vector<Tgd> tgds = ParseTgds("E(x,y) -> H(x,y).");
  plan::TgdPlan plan = plan::CompileTgd(tgds[0]);
  ASSERT_EQ(plan.head.full.size(), 1u);
  EXPECT_EQ(plan.head.full[0].access.kind, plan::AccessPath::kProbeVar);
}

TEST_F(PlanCompilerTest, DumpPlansRendersOrderAccessPathsAndVariants) {
  std::vector<Tgd> tgds = ParseTgds("E(x,z) & E(z,y) -> H(x,y).");
  auto compiled = plan::CompileSetting(tgds, {});
  std::string dump =
      plan::DumpPlans(*compiled, tgds, {}, schema_, symbols_);
  EXPECT_NE(dump.find("E(x,z) & E(z,y) -> H(x,y)"), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("scan"), std::string::npos) << dump;
  EXPECT_NE(dump.find("probe-var[0]=z"), std::string::npos) << dump;
  EXPECT_NE(dump.find("delta pivot atom#1"), std::string::npos) << dump;
  EXPECT_NE(dump.find("fingerprint"), std::string::npos) << dump;
}

TEST_F(PlanCompilerTest, FingerprintIsStructuralNotTextual) {
  // Renaming variables and relations changes nothing the compiler reads
  // as long as ids coincide; adding a constant does.
  std::vector<Tgd> a = ParseTgds("E(x,z) & E(z,y) -> H(x,y).");
  std::vector<Tgd> b = ParseTgds("E(u,v) & E(v,w) -> H(u,w).");
  std::vector<Tgd> c = ParseTgds("E('a',z) & E(z,y) -> H('a',y).");
  EXPECT_EQ(plan::SettingFingerprint(a, {}), plan::SettingFingerprint(b, {}));
  EXPECT_NE(plan::SettingFingerprint(a, {}), plan::SettingFingerprint(c, {}));
}

// --- PlanCache -----------------------------------------------------------

TEST_F(PlanCompilerTest, PlanCacheReturnsSharedPlansAndCountsHits) {
  std::vector<Tgd> tgds =
      ParseTgds("E(x,z) & E(z,y) & E(y,w) & H(w,u) -> F(x,u).");
  obs::Counter hits = obs::MetricsRegistry::Global().GetCounter(
      "pdx_plan_cache_hits_total");
  obs::Counter compiled_total = obs::MetricsRegistry::Global().GetCounter(
      "pdx_plan_compiled_total");

  plan::PlanCache& cache = plan::PlanCache::Global();
  plan::PlanCache::Stats before = cache.stats();
  int64_t hits_before = hits.Value();
  int64_t compiled_before = compiled_total.Value();

  auto first = cache.GetOrCompile(tgds, {});
  auto second = cache.GetOrCompile(tgds, {});
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), second.get())
      << "same structural setting must share one compiled plan";

  plan::PlanCache::Stats after = cache.stats();
  EXPECT_EQ(after.compiled - before.compiled, 1);
  EXPECT_EQ(after.hits - before.hits, 1);
  EXPECT_EQ(compiled_total.Value() - compiled_before, 1);
  EXPECT_EQ(hits.Value() - hits_before, 1);
}

// --- Executor vs interpreter --------------------------------------------

using Row = std::vector<uint64_t>;

std::set<Row> CollectInterpreted(const std::vector<Atom>& atoms,
                                 int var_count, const Instance& instance,
                                 const Binding& partial) {
  std::set<Row> rows;
  EnumerateMatches(atoms, var_count, instance, partial,
                   [&](const Binding& b) {
                     Row row;
                     for (size_t v = 0; v < b.bound.size(); ++v) {
                       row.push_back(b.bound[v] ? b.values[v].packed() : 0);
                     }
                     EXPECT_TRUE(rows.insert(row).second);
                     return true;
                   });
  return rows;
}

std::set<Row> CollectPlanned(const plan::BodyPlan& plan,
                             const Instance& instance,
                             const Binding& partial) {
  std::set<Row> rows;
  EnumerateMatchesPlanned(plan, instance, partial, [&](const Binding& b) {
    Row row;
    for (size_t v = 0; v < b.bound.size(); ++v) {
      row.push_back(b.bound[v] ? b.values[v].packed() : 0);
    }
    EXPECT_TRUE(rows.insert(row).second);
    return true;
  });
  return rows;
}

TEST_F(PlanCompilerTest, ExecutorMatchesInterpreterOnMergedInstance) {
  auto query = ParseQuery("q(x,y,w) :- E(x,y) & H(y,w).", schema_,
                          &symbols_);
  ASSERT_TRUE(query.ok());
  Value a = symbols_.InternConstant("a");
  Value b = symbols_.InternConstant("b");
  Value c = symbols_.InternConstant("c");
  Value n1 = symbols_.FreshNull();
  Value n2 = symbols_.FreshNull();

  Instance instance(&schema_);
  instance.AddFact(0, {a, n1});
  instance.AddFact(0, {a, b});
  instance.AddFact(1, {n2, c});
  instance.AddFact(1, {b, a});
  // Merging n1 and n2 makes E(a,n1) join H(n2,c) only under
  // resolve-on-read — the raw tuples never change.
  ASSERT_TRUE(instance.MergeValues(n1, n2).merged);
  ASSERT_TRUE(instance.has_merges());

  plan::BodyPlan plan =
      plan::CompileBody(query->body, query->var_count, {});
  std::set<Row> interpreted = CollectInterpreted(
      query->body, query->var_count, instance,
      Binding::Empty(query->var_count));
  std::set<Row> planned =
      CollectPlanned(plan, instance, Binding::Empty(query->var_count));
  EXPECT_EQ(interpreted, planned);
  EXPECT_EQ(interpreted.size(), 2u);  // (a,n,c) with n = root, and (a,b,a)

  // Partial bindings: x = a fixed, with the plan compiled for the
  // unbound case — the runtime-checked kBind path must still filter.
  Binding partial = Binding::Empty(query->var_count);
  partial.Bind(0, a);
  EXPECT_EQ(CollectInterpreted(query->body, query->var_count, instance,
                               partial),
            CollectPlanned(plan, instance, partial));
}

TEST_F(PlanCompilerTest, DeltaExecutorMatchesInterpreterPerPartition) {
  auto query = ParseQuery("q(x,y,z) :- E(x,y) & E(y,z).", schema_,
                          &symbols_);
  ASSERT_TRUE(query.ok());
  auto node = [&](int i) {
    return symbols_.InternConstant("n" + std::to_string(i));
  };
  Instance instance(&schema_);
  for (int i = 0; i < 6; ++i) {
    instance.AddFact(0, {node(i), node((i + 1) % 6)});
  }
  InstanceWatermark mark = instance.TakeWatermark();
  for (int i = 0; i < 6; ++i) {
    instance.AddFact(0, {node(i), node((i + 2) % 6)});
  }
  DeltaView delta(instance, mark);

  plan::BodyPlan plan =
      plan::CompileBody(query->body, query->var_count, {});
  Binding empty = Binding::Empty(query->var_count);

  std::set<Row> interpreted;
  EnumerateMatchesDelta(query->body, query->var_count, instance, delta,
                        empty, [&](const Binding& b) {
                          Row row;
                          for (const Value& v : b.values) {
                            row.push_back(v.packed());
                          }
                          interpreted.insert(row);
                          return true;
                        });
  std::set<Row> planned;
  EnumerateMatchesDeltaPlanned(plan, instance, delta, empty,
                               [&](const Binding& b) {
                                 Row row;
                                 for (const Value& v : b.values) {
                                   row.push_back(v.packed());
                                 }
                                 planned.insert(row);
                                 return true;
                               });
  EXPECT_EQ(interpreted, planned);
  EXPECT_FALSE(planned.empty());

  // And per partition: each partition's match set agrees with the
  // interpreter enumerating the same partition.
  for (const DeltaPartition& part :
       PartitionDeltaMatches(query->body, delta, 4)) {
    std::set<Row> part_interpreted, part_planned;
    EnumerateMatchesDeltaPartition(query->body, query->var_count, instance,
                                   delta, part, empty,
                                   [&](const Binding& b) {
                                     Row row;
                                     for (const Value& v : b.values) {
                                       row.push_back(v.packed());
                                     }
                                     part_interpreted.insert(row);
                                     return true;
                                   });
    EnumerateMatchesDeltaPartitionPlanned(plan, instance, delta, part,
                                          empty, [&](const Binding& b) {
                                            Row row;
                                            for (const Value& v : b.values) {
                                              row.push_back(v.packed());
                                            }
                                            part_planned.insert(row);
                                            return true;
                                          });
    EXPECT_EQ(part_interpreted, part_planned);
  }
}

TEST_F(PlanCompilerTest, ChaseResultsAgreeAcrossCompileToggle) {
  // End-to-end: the same chase with compile_plans on and off reaches the
  // same instance (same null identities — the compiled path preserves the
  // interpreter's fresh-null order) on a tgd+egd interleaving.
  auto deps = ParseDependencies(
      "E(x,y) -> exists z: H(x,z) & F(y,z). "
      "H(x,y) & H(x,z) -> y = z. "
      "F(x,y) & F(x,z) -> y = z.",
      schema_, &symbols_);
  ASSERT_TRUE(deps.ok());
  Value a = symbols_.InternConstant("a");
  Value b = symbols_.InternConstant("b");
  Value c = symbols_.InternConstant("c");
  Instance start(&schema_);
  start.AddFact(0, {a, b});
  start.AddFact(0, {b, c});
  start.AddFact(0, {a, c});

  ChaseOptions interpreted_options;
  interpreted_options.compile_plans = false;
  ChaseOptions compiled_options;
  compiled_options.compile_plans = true;
  ChaseResult interpreted =
      Chase(start, deps->tgds, deps->egds, &symbols_, interpreted_options);
  ChaseResult compiled =
      Chase(start, deps->tgds, deps->egds, &symbols_, compiled_options);
  ASSERT_EQ(interpreted.outcome, ChaseOutcome::kSuccess);
  ASSERT_EQ(compiled.outcome, ChaseOutcome::kSuccess);
  EXPECT_EQ(interpreted.steps, compiled.steps);
  EXPECT_EQ(interpreted.nulls_created, compiled.nulls_created);
  EXPECT_EQ(testing_util::CanonicalizedFingerprint(interpreted.instance),
            testing_util::CanonicalizedFingerprint(compiled.instance));
}

// --- Solver cache criterion ---------------------------------------------

TEST_F(PlanCompilerTest, SolverNodeRechasesCompileEachSettingOnce) {
  if (plan::ForceInterpreter()) {
    GTEST_SKIP() << "PDX_FORCE_INTERPRETER disables plan compilation";
  }
  // A setting shaped to be structurally unique in this process (arity-3
  // target relation), so its first solve is the one and only compile; the
  // search explores multiple nodes, each re-chasing through the same
  // plans, and repeated solves hit the cache without recompiling.
  SymbolTable symbols;
  PdeSetting setting = Unwrap(PdeSetting::Create(
      {{"S", 2}}, {{"T", 3}},
      "S(x,y) -> exists z: T(x,y,z).",
      "T(x,y,z) -> S(x,y).",
      "T(x,y,z) & T(x,y,w) -> z = w.", &symbols));
  Instance source = testing_util::ParseOrDie(
      setting, "S(a,b). S(b,c). S(c,a).", &symbols);
  Instance target = setting.EmptyInstance();

  obs::Counter compiled_total = obs::MetricsRegistry::Global().GetCounter(
      "pdx_plan_compiled_total");
  obs::Counter hits = obs::MetricsRegistry::Global().GetCounter(
      "pdx_plan_cache_hits_total");

  int64_t compiled_before = compiled_total.Value();
  GenericSolveResult first = Unwrap(
      GenericExistsSolution(setting, source, target, &symbols));
  ASSERT_EQ(first.outcome, SolveOutcome::kSolutionFound);
  ASSERT_GT(first.nodes_explored, 1);
  int64_t compiled_first = compiled_total.Value() - compiled_before;
  EXPECT_EQ(compiled_first, 1)
      << "one solve must compile its setting exactly once, regardless of "
         "node count";

  int64_t hits_before = hits.Value();
  GenericSolveResult second = Unwrap(
      GenericExistsSolution(setting, source, target, &symbols));
  EXPECT_EQ(second.outcome, first.outcome);
  EXPECT_EQ(compiled_total.Value() - compiled_before, 1)
      << "a repeated solve of the same setting must not recompile";
  EXPECT_GE(hits.Value() - hits_before, 1);
}

}  // namespace
}  // namespace pdx
