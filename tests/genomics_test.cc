#include "workload/genomics.h"

#include "gtest/gtest.h"
#include "pde/ctract_solver.h"
#include "pde/generic_solver.h"
#include "pde/solution.h"
#include "tests/test_util.h"

namespace pdx {
namespace {

using testing_util::Unwrap;

TEST(GenomicsTest, SettingIsInCtract) {
  SymbolTable symbols;
  PdeSetting setting = Unwrap(MakeGenomicsSetting(&symbols));
  EXPECT_TRUE(setting.InCtract());
  EXPECT_TRUE(setting.ctract_report().condition2_1);
}

TEST(GenomicsTest, ConsistentWorkloadHasSolution) {
  SymbolTable symbols;
  PdeSetting setting = Unwrap(MakeGenomicsSetting(&symbols));
  Rng rng(42);
  GenomicsWorkloadOptions opts;
  opts.proteins = 10;
  opts.unbacked_target_annotations = 0;
  GenomicsWorkload workload =
      MakeGenomicsWorkload(setting, opts, &rng, &symbols);
  CtractSolveResult result = Unwrap(CtractExistsSolution(
      setting, workload.source, workload.target, &symbols));
  ASSERT_TRUE(result.has_solution);
  EXPECT_TRUE(IsSolution(setting, workload.source, workload.target,
                         *result.solution, symbols));
  // The solution imports every Swiss-Prot protein.
  RelationId protein = setting.schema().FindRelation("Protein").value();
  EXPECT_EQ(result.solution->tuples(protein).size(), 10u);
}

TEST(GenomicsTest, UnbackedLocalDataMakesItUnsolvable) {
  SymbolTable symbols;
  PdeSetting setting = Unwrap(MakeGenomicsSetting(&symbols));
  Rng rng(42);
  GenomicsWorkloadOptions opts;
  opts.proteins = 10;
  opts.unbacked_target_annotations = 2;
  GenomicsWorkload workload =
      MakeGenomicsWorkload(setting, opts, &rng, &symbols);
  CtractSolveResult result = Unwrap(CtractExistsSolution(
      setting, workload.source, workload.target, &symbols));
  EXPECT_FALSE(result.has_solution);
}

TEST(GenomicsTest, SolversAgreeOnSmallWorkloads) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    SymbolTable symbols;
    PdeSetting setting = Unwrap(MakeGenomicsSetting(&symbols));
    Rng rng(seed);
    GenomicsWorkloadOptions opts;
    opts.proteins = 4;
    opts.annotations_per_protein = 1;
    opts.backed_target_annotations = 2;
    opts.unbacked_target_annotations = seed % 2 == 0 ? 1 : 0;
    GenomicsWorkload workload =
        MakeGenomicsWorkload(setting, opts, &rng, &symbols);
    CtractSolveResult fast = Unwrap(CtractExistsSolution(
        setting, workload.source, workload.target, &symbols));
    GenericSolveResult slow = Unwrap(GenericExistsSolution(
        setting, workload.source, workload.target, &symbols));
    ASSERT_NE(slow.outcome, SolveOutcome::kBudgetExhausted);
    EXPECT_EQ(fast.has_solution,
              slow.outcome == SolveOutcome::kSolutionFound)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace pdx
