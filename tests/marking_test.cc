#include "logic/marking.h"

#include "gtest/gtest.h"
#include "logic/parser.h"
#include "pde/setting.h"
#include "workload/reductions.h"

namespace pdx {
namespace {

// The Section 4 warm-up example:
//   Σ_st: S(x1,x2) -> exists y: T(x1,y)
//   Σ_ts: T(x1,x2) -> exists w: S(w,x2)
// Marked position: T.1. Marked variables of the ts-tgd: x2 and w.
TEST(MarkingTest, PaperWarmupExample) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("S", 2).ok());
  ASSERT_TRUE(schema.AddRelation("T", 2).ok());
  SymbolTable symbols;
  auto st = ParseTgd("S(x1,x2) -> exists y: T(x1,y).", schema, &symbols);
  auto ts = ParseTgd("T(x1,x2) -> exists w: S(w,x2).", schema, &symbols);
  ASSERT_TRUE(st.ok());
  ASSERT_TRUE(ts.ok());

  auto marked_positions = ComputeMarkedPositions({*st}, schema);
  RelationId t = schema.FindRelation("T").value();
  RelationId s = schema.FindRelation("S").value();
  EXPECT_FALSE(marked_positions[t][0]);
  EXPECT_TRUE(marked_positions[t][1]);
  EXPECT_FALSE(marked_positions[s][0]);
  EXPECT_FALSE(marked_positions[s][1]);

  std::vector<bool> marked = ComputeMarkedVariables(*ts, marked_positions);
  int marked_count = 0;
  for (VariableId v = 0; v < ts->var_count; ++v) {
    if (!marked[v]) continue;
    ++marked_count;
    EXPECT_TRUE(ts->var_names[v] == "x2" || ts->var_names[v] == "w")
        << "unexpected marked variable " << ts->var_names[v];
  }
  EXPECT_EQ(marked_count, 2);
}

// The CLIQUE setting (Theorem 3): marked positions are P.1 and P.3; the
// setting satisfies condition 1 but violates both 2.1 and 2.2.
TEST(MarkingTest, CliqueSettingClassification) {
  SymbolTable symbols;
  auto setting = MakeCliqueSetting(&symbols);
  ASSERT_TRUE(setting.ok());
  auto marked_positions =
      ComputeMarkedPositions(setting->st_tgds(), setting->schema());
  RelationId p = setting->schema().FindRelation("P").value();
  EXPECT_FALSE(marked_positions[p][0]);
  EXPECT_TRUE(marked_positions[p][1]);
  EXPECT_FALSE(marked_positions[p][2]);
  EXPECT_TRUE(marked_positions[p][3]);

  const CtractReport& report = setting->ctract_report();
  EXPECT_TRUE(report.condition1);
  EXPECT_FALSE(report.condition2_1);
  EXPECT_FALSE(report.condition2_2);
  EXPECT_FALSE(report.in_ctract());
  EXPECT_TRUE(report.theorem5_applicable());
  EXPECT_FALSE(setting->InCtract());
}

// LAV target-to-source dependencies: conditions 1 and 2.1 (Corollary 2).
TEST(MarkingTest, LavTsSettingIsInCtract) {
  SymbolTable symbols;
  auto setting = PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}},
      "E(x,y) -> exists z: H(x,z).",
      "H(x,y) -> exists z: E(x,z) & E(z,y).", "", &symbols);
  ASSERT_TRUE(setting.ok());
  const CtractReport& report = setting->ctract_report();
  EXPECT_TRUE(report.condition1);
  EXPECT_TRUE(report.condition2_1);
  EXPECT_TRUE(report.in_ctract());
  EXPECT_TRUE(setting->InCtract());
}

// Full source-to-target tgds: condition 2.2 holds whatever Σ_ts is
// (Corollary 1).
TEST(MarkingTest, FullStSettingIsInCtract) {
  SymbolTable symbols;
  auto setting = PdeSetting::Create(
      {{"E", 2}, {"S", 2}}, {{"H", 2}},
      "E(x,z) & E(z,y) -> H(x,y).",
      // Multi-literal LHS with joins, existentials in the head:
      "H(x,y) & H(y,z) -> exists u,v: E(x,u) & S(u,v).", "", &symbols);
  ASSERT_TRUE(setting.ok());
  const CtractReport& report = setting->ctract_report();
  EXPECT_TRUE(report.condition1);
  EXPECT_FALSE(report.condition2_1);  // two LHS literals
  EXPECT_TRUE(report.condition2_2);
  EXPECT_TRUE(setting->InCtract());
}

// A marked variable repeated in the LHS violates condition 1 (the
// situation in the Lemma 5 counterexample discussion).
TEST(MarkingTest, RepeatedMarkedVariableViolatesCondition1) {
  SymbolTable symbols;
  auto setting = PdeSetting::Create(
      {{"E", 2}}, {{"T1", 2}, {"T2", 2}},
      "E(x,y) -> exists z: T1(x,z) & T2(z,y).",
      // z is marked (T1.1 and T2.0 are marked) and occurs twice.
      "T1(x,z) & T2(z,y) -> E(x,y).", "", &symbols);
  ASSERT_TRUE(setting.ok());
  const CtractReport& report = setting->ctract_report();
  EXPECT_FALSE(report.condition1);
  EXPECT_FALSE(report.in_ctract());
  EXPECT_FALSE(report.theorem5_applicable());
  ASSERT_FALSE(report.violations.empty());
}

// The 3-COL setting satisfies conditions 1 and 2.2 (its marked variables
// only ever appear alone in unary RHS atoms).
TEST(MarkingTest, ThreeColSettingSatisfiesConditions1And22) {
  SymbolTable symbols;
  auto setting = MakeThreeColSetting(&symbols);
  ASSERT_TRUE(setting.ok());
  const CtractReport& report = setting->ctract_report();
  EXPECT_TRUE(report.condition1);
  EXPECT_TRUE(report.condition2_2);
  // Not in C_tract overall: the setting carries disjunctive ts-tgds.
  EXPECT_FALSE(setting->InCtract());
}

// Egd/target-tgd boundary settings: Σ_st and Σ_ts satisfy conditions 1 and
// 2.1, so only Σ_t pushes them outside the tractable class.
TEST(MarkingTest, BoundarySettingsSatisfyConditions1And21) {
  SymbolTable symbols;
  auto egd_setting = MakeEgdBoundarySetting(&symbols);
  ASSERT_TRUE(egd_setting.ok());
  EXPECT_TRUE(egd_setting->ctract_report().condition1);
  EXPECT_TRUE(egd_setting->ctract_report().condition2_1);
  EXPECT_TRUE(egd_setting->HasTargetConstraints());
  EXPECT_FALSE(egd_setting->InCtract());

  SymbolTable symbols2;
  auto tgd_setting = MakeTargetTgdBoundarySetting(&symbols2);
  ASSERT_TRUE(tgd_setting.ok());
  EXPECT_TRUE(tgd_setting->ctract_report().condition1);
  EXPECT_TRUE(tgd_setting->ctract_report().condition2_1);
  EXPECT_TRUE(tgd_setting->HasTargetConstraints());
  EXPECT_FALSE(tgd_setting->InCtract());
}

// Marked variables co-occurring in an RHS conjunct *and* in an LHS conjunct
// satisfy condition 2.2(a).
TEST(MarkingTest, CoOccurrenceInLhsSatisfiesCondition22) {
  SymbolTable symbols;
  auto setting = PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}},
      "E(x,y) -> exists z,w: H(z,w).",
      // z and w are both marked, co-occur in the RHS atom E(z,w) and in the
      // LHS atom H(z,w).
      "H(z,w) -> E(z,w).", "", &symbols);
  ASSERT_TRUE(setting.ok());
  EXPECT_TRUE(setting->ctract_report().condition2_2);
  EXPECT_TRUE(setting->InCtract());
}

}  // namespace
}  // namespace pdx
