#include "base/string_util.h"

#include <vector>

#include "gtest/gtest.h"

namespace pdx {
namespace {

TEST(StrCatTest, ConcatenatesMixedTypes) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
  EXPECT_EQ(StrCat("solo"), "solo");
}

TEST(StrJoinTest, JoinsWithSeparator) {
  std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(StrJoin(parts, ", "), "a, b, c");
  EXPECT_EQ(StrJoin(std::vector<std::string>{}, ","), "");
  EXPECT_EQ(StrJoin(std::vector<int>{1, 2, 3}, "-"), "1-2-3");
}

TEST(StrSplitTest, SplitsAndKeepsEmptyPieces) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripWhitespace("\t\n x \r"), "x");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_FALSE(StartsWith("bar", "foo"));
}

}  // namespace
}  // namespace pdx
