#include "hom/instance_hom.h"

#include <algorithm>

#include "gtest/gtest.h"

namespace pdx {
namespace {

class InstanceHomTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.AddRelation("E", 2).ok());
    a_ = symbols_.InternConstant("a");
    b_ = symbols_.InternConstant("b");
    c_ = symbols_.InternConstant("c");
  }

  Schema schema_;
  SymbolTable symbols_;
  Value a_, b_, c_;
};

TEST_F(InstanceHomTest, BlocksGroupConnectedNulls) {
  Instance instance(&schema_);
  Value n1 = symbols_.FreshNull();
  Value n2 = symbols_.FreshNull();
  Value n3 = symbols_.FreshNull();
  instance.AddFact(0, {n1, n2});  // n1 - n2 connected
  instance.AddFact(0, {n2, a_});  // joins the same component
  instance.AddFact(0, {n3, n3});  // its own component
  instance.AddFact(0, {a_, b_});  // null-free block
  instance.AddFact(0, {b_, c_});  // null-free block

  std::vector<Block> blocks = DecomposeIntoBlocks(instance);
  ASSERT_EQ(blocks.size(), 3u);
  // Identify blocks by null count.
  std::vector<size_t> fact_counts;
  std::vector<size_t> null_counts;
  for (const Block& block : blocks) {
    fact_counts.push_back(block.facts.size());
    null_counts.push_back(block.nulls.size());
  }
  std::sort(null_counts.begin(), null_counts.end());
  EXPECT_EQ(null_counts, (std::vector<size_t>{0, 1, 2}));
  size_t total_facts = 0;
  for (size_t n : fact_counts) total_facts += n;
  EXPECT_EQ(total_facts, instance.fact_count());
}

TEST_F(InstanceHomTest, EmptyInstanceHasNoBlocks) {
  Instance instance(&schema_);
  EXPECT_TRUE(DecomposeIntoBlocks(instance).empty());
}

TEST_F(InstanceHomTest, NullFreeInstanceIsOneBlock) {
  Instance instance(&schema_);
  instance.AddFact(0, {a_, b_});
  instance.AddFact(0, {b_, c_});
  std::vector<Block> blocks = DecomposeIntoBlocks(instance);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_TRUE(blocks[0].nulls.empty());
  EXPECT_EQ(blocks[0].facts.size(), 2u);
}

TEST_F(InstanceHomTest, HomomorphismMapsNullsToValues) {
  // Source: E(n1, n2), E(n2, n1) — a 2-cycle pattern.
  Instance source(&schema_);
  Value n1 = symbols_.FreshNull();
  Value n2 = symbols_.FreshNull();
  source.AddFact(0, {n1, n2});
  source.AddFact(0, {n2, n1});
  // Target: a real 2-cycle a <-> b.
  Instance target(&schema_);
  target.AddFact(0, {a_, b_});
  target.AddFact(0, {b_, a_});
  auto h = FindInstanceHomomorphism(source, target);
  ASSERT_TRUE(h.has_value());
  Instance image = ApplyAssignment(source, *h);
  EXPECT_TRUE(image.IsSubsetOf(target));
  EXPECT_FALSE(image.HasNulls());
}

TEST_F(InstanceHomTest, NoHomomorphismWhenPatternCannotEmbed) {
  // Source requires a self-loop-like identification... a 2-cycle cannot
  // map into a directed path.
  Instance source(&schema_);
  Value n1 = symbols_.FreshNull();
  Value n2 = symbols_.FreshNull();
  source.AddFact(0, {n1, n2});
  source.AddFact(0, {n2, n1});
  Instance target(&schema_);
  target.AddFact(0, {a_, b_});
  target.AddFact(0, {b_, c_});
  EXPECT_FALSE(FindInstanceHomomorphism(source, target).has_value());
}

TEST_F(InstanceHomTest, ConstantsMustMapToThemselves) {
  Instance source(&schema_);
  Value n = symbols_.FreshNull();
  source.AddFact(0, {a_, n});
  Instance target(&schema_);
  target.AddFact(0, {b_, c_});  // no fact with a in first position
  EXPECT_FALSE(FindInstanceHomomorphism(source, target).has_value());
  target.AddFact(0, {a_, c_});
  auto h = FindInstanceHomomorphism(source, target);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->at(n.packed()), c_);
}

TEST_F(InstanceHomTest, NullFreeFactsRequireExactPresence) {
  Instance source(&schema_);
  source.AddFact(0, {a_, b_});
  Instance target(&schema_);
  target.AddFact(0, {b_, a_});
  EXPECT_FALSE(FindInstanceHomomorphism(source, target).has_value());
  target.AddFact(0, {a_, b_});
  EXPECT_TRUE(FindInstanceHomomorphism(source, target).has_value());
}

TEST_F(InstanceHomTest, BlocksFactorizeTheSearch) {
  // Two independent blocks, each mappable: combined assignment covers both.
  Instance source(&schema_);
  Value n1 = symbols_.FreshNull();
  Value n2 = symbols_.FreshNull();
  source.AddFact(0, {a_, n1});
  source.AddFact(0, {b_, n2});
  Instance target(&schema_);
  target.AddFact(0, {a_, c_});
  target.AddFact(0, {b_, c_});
  auto h = FindInstanceHomomorphism(source, target);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->size(), 2u);
  EXPECT_EQ(h->at(n1.packed()), c_);
  EXPECT_EQ(h->at(n2.packed()), c_);
}

TEST_F(InstanceHomTest, ApplyAssignmentKeepsUnassignedNulls) {
  Instance source(&schema_);
  Value n1 = symbols_.FreshNull();
  Value n2 = symbols_.FreshNull();
  source.AddFact(0, {n1, n2});
  NullAssignment partial;
  partial[n1.packed()] = a_;
  Instance image = ApplyAssignment(source, partial);
  EXPECT_TRUE(image.Contains(0, {a_, n2}));
}

TEST_F(InstanceHomTest, HomomorphismMayMapNullsToNulls) {
  Instance source(&schema_);
  Value n1 = symbols_.FreshNull();
  source.AddFact(0, {a_, n1});
  Instance target(&schema_);
  Value n2 = symbols_.FreshNull();
  target.AddFact(0, {a_, n2});
  auto h = FindInstanceHomomorphism(source, target);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->at(n1.packed()), n2);
}

}  // namespace
}  // namespace pdx
