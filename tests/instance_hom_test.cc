#include "hom/instance_hom.h"

#include <algorithm>

#include "gtest/gtest.h"

namespace pdx {
namespace {

class InstanceHomTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.AddRelation("E", 2).ok());
    a_ = symbols_.InternConstant("a");
    b_ = symbols_.InternConstant("b");
    c_ = symbols_.InternConstant("c");
  }

  Schema schema_;
  SymbolTable symbols_;
  Value a_, b_, c_;
};

TEST_F(InstanceHomTest, BlocksGroupConnectedNulls) {
  Instance instance(&schema_);
  Value n1 = symbols_.FreshNull();
  Value n2 = symbols_.FreshNull();
  Value n3 = symbols_.FreshNull();
  instance.AddFact(0, {n1, n2});  // n1 - n2 connected
  instance.AddFact(0, {n2, a_});  // joins the same component
  instance.AddFact(0, {n3, n3});  // its own component
  instance.AddFact(0, {a_, b_});  // null-free block
  instance.AddFact(0, {b_, c_});  // null-free block

  std::vector<Block> blocks = DecomposeIntoBlocks(instance);
  ASSERT_EQ(blocks.size(), 3u);
  // Identify blocks by null count.
  std::vector<size_t> fact_counts;
  std::vector<size_t> null_counts;
  for (const Block& block : blocks) {
    fact_counts.push_back(block.facts.size());
    null_counts.push_back(block.nulls.size());
  }
  std::sort(null_counts.begin(), null_counts.end());
  EXPECT_EQ(null_counts, (std::vector<size_t>{0, 1, 2}));
  size_t total_facts = 0;
  for (size_t n : fact_counts) total_facts += n;
  EXPECT_EQ(total_facts, instance.fact_count());
}

TEST_F(InstanceHomTest, EmptyInstanceHasNoBlocks) {
  Instance instance(&schema_);
  EXPECT_TRUE(DecomposeIntoBlocks(instance).empty());
}

TEST_F(InstanceHomTest, NullFreeInstanceIsOneBlock) {
  Instance instance(&schema_);
  instance.AddFact(0, {a_, b_});
  instance.AddFact(0, {b_, c_});
  std::vector<Block> blocks = DecomposeIntoBlocks(instance);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_TRUE(blocks[0].nulls.empty());
  EXPECT_EQ(blocks[0].facts.size(), 2u);
}

TEST_F(InstanceHomTest, HomomorphismMapsNullsToValues) {
  // Source: E(n1, n2), E(n2, n1) — a 2-cycle pattern.
  Instance source(&schema_);
  Value n1 = symbols_.FreshNull();
  Value n2 = symbols_.FreshNull();
  source.AddFact(0, {n1, n2});
  source.AddFact(0, {n2, n1});
  // Target: a real 2-cycle a <-> b.
  Instance target(&schema_);
  target.AddFact(0, {a_, b_});
  target.AddFact(0, {b_, a_});
  auto h = FindInstanceHomomorphism(source, target);
  ASSERT_TRUE(h.has_value());
  Instance image = ApplyAssignment(source, *h);
  EXPECT_TRUE(image.IsSubsetOf(target));
  EXPECT_FALSE(image.HasNulls());
}

TEST_F(InstanceHomTest, NoHomomorphismWhenPatternCannotEmbed) {
  // Source requires a self-loop-like identification... a 2-cycle cannot
  // map into a directed path.
  Instance source(&schema_);
  Value n1 = symbols_.FreshNull();
  Value n2 = symbols_.FreshNull();
  source.AddFact(0, {n1, n2});
  source.AddFact(0, {n2, n1});
  Instance target(&schema_);
  target.AddFact(0, {a_, b_});
  target.AddFact(0, {b_, c_});
  EXPECT_FALSE(FindInstanceHomomorphism(source, target).has_value());
}

TEST_F(InstanceHomTest, ConstantsMustMapToThemselves) {
  Instance source(&schema_);
  Value n = symbols_.FreshNull();
  source.AddFact(0, {a_, n});
  Instance target(&schema_);
  target.AddFact(0, {b_, c_});  // no fact with a in first position
  EXPECT_FALSE(FindInstanceHomomorphism(source, target).has_value());
  target.AddFact(0, {a_, c_});
  auto h = FindInstanceHomomorphism(source, target);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->at(n.packed()), c_);
}

TEST_F(InstanceHomTest, NullFreeFactsRequireExactPresence) {
  Instance source(&schema_);
  source.AddFact(0, {a_, b_});
  Instance target(&schema_);
  target.AddFact(0, {b_, a_});
  EXPECT_FALSE(FindInstanceHomomorphism(source, target).has_value());
  target.AddFact(0, {a_, b_});
  EXPECT_TRUE(FindInstanceHomomorphism(source, target).has_value());
}

TEST_F(InstanceHomTest, BlocksFactorizeTheSearch) {
  // Two independent blocks, each mappable: combined assignment covers both.
  Instance source(&schema_);
  Value n1 = symbols_.FreshNull();
  Value n2 = symbols_.FreshNull();
  source.AddFact(0, {a_, n1});
  source.AddFact(0, {b_, n2});
  Instance target(&schema_);
  target.AddFact(0, {a_, c_});
  target.AddFact(0, {b_, c_});
  auto h = FindInstanceHomomorphism(source, target);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->size(), 2u);
  EXPECT_EQ(h->at(n1.packed()), c_);
  EXPECT_EQ(h->at(n2.packed()), c_);
}

TEST_F(InstanceHomTest, ApplyAssignmentKeepsUnassignedNulls) {
  Instance source(&schema_);
  Value n1 = symbols_.FreshNull();
  Value n2 = symbols_.FreshNull();
  source.AddFact(0, {n1, n2});
  NullAssignment partial;
  partial[n1.packed()] = a_;
  Instance image = ApplyAssignment(source, partial);
  EXPECT_TRUE(image.Contains(0, {a_, n2}));
}

TEST_F(InstanceHomTest, HomomorphismMayMapNullsToNulls) {
  Instance source(&schema_);
  Value n1 = symbols_.FreshNull();
  source.AddFact(0, {a_, n1});
  Instance target(&schema_);
  Value n2 = symbols_.FreshNull();
  target.AddFact(0, {a_, n2});
  auto h = FindInstanceHomomorphism(source, target);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->at(n1.packed()), n2);
}

// --- CanonicalizeNulls -------------------------------------------------

class CanonicalizeNullsTest : public InstanceHomTest {
 protected:
  // Applies a bijective null renaming given as packed-id pairs.
  Instance Rename(const Instance& instance,
                  const std::vector<std::pair<Value, Value>>& pairs) {
    NullAssignment renaming;
    for (const auto& [from, to] : pairs) renaming[from.packed()] = to;
    return ApplyAssignment(instance, renaming);
  }
};

TEST_F(CanonicalizeNullsTest, InvariantUnderNullRenaming) {
  Instance instance(&schema_);
  Value n1 = symbols_.FreshNull();
  Value n2 = symbols_.FreshNull();
  Value n3 = symbols_.FreshNull();
  instance.AddFact(0, {a_, n1});
  instance.AddFact(0, {n1, n2});
  instance.AddFact(0, {n2, n3});
  instance.AddFact(0, {n3, b_});
  // Rename through high, permuted ids: the canonical forms must be
  // literally equal fact sets.
  Instance renamed = Rename(instance, {{n1, Value::Null(901)},
                                       {n2, Value::Null(77)},
                                       {n3, Value::Null(500)}});
  Instance canon_a = CanonicalizeNulls(instance);
  Instance canon_b = CanonicalizeNulls(renamed);
  EXPECT_EQ(canon_a.CanonicalFingerprint(), canon_b.CanonicalFingerprint());
  EXPECT_TRUE(canon_a.IsSubsetOf(canon_b));
  EXPECT_TRUE(canon_b.IsSubsetOf(canon_a));
}

TEST_F(CanonicalizeNullsTest, IsIdempotentAndPreservesStructure) {
  Instance instance(&schema_);
  Value n1 = symbols_.FreshNull();
  Value n2 = symbols_.FreshNull();
  instance.AddFact(0, {a_, n1});
  instance.AddFact(0, {n1, n2});
  instance.AddFact(0, {n2, n2});
  Instance canon = CanonicalizeNulls(instance);
  EXPECT_EQ(canon.ResolvedFactCount(), instance.ResolvedFactCount());
  // The canonical form is isomorphic to the input: homomorphisms both ways.
  EXPECT_TRUE(FindInstanceHomomorphism(instance, canon).has_value());
  EXPECT_TRUE(FindInstanceHomomorphism(canon, instance).has_value());
  Instance twice = CanonicalizeNulls(canon);
  EXPECT_EQ(canon.CanonicalFingerprint(), twice.CanonicalFingerprint());
}

TEST_F(CanonicalizeNullsTest, SeparatesNonIsomorphicInstances) {
  // Same relation, same fact count, same null count — but a loop is not a
  // path, and refinement distinguishes the occurrence structures.
  Instance loop(&schema_);
  Value n1 = symbols_.FreshNull();
  loop.AddFact(0, {n1, n1});
  Instance edge(&schema_);
  Value n2 = symbols_.FreshNull();
  Value n3 = symbols_.FreshNull();
  edge.AddFact(0, {n2, n3});
  EXPECT_NE(CanonicalizeNulls(loop).CanonicalFingerprint(),
            CanonicalizeNulls(edge).CanonicalFingerprint());
}

TEST_F(CanonicalizeNullsTest, SymmetricChainsNeedRefinementNotJustDegree) {
  // Two disjoint chains a -> n1 -> n2 -> b and a -> n3 -> n4 -> c: every
  // null has in-degree 1 and out-degree 1, so a single local-signature
  // round cannot separate {n1, n3} — only propagating the b-vs-c endpoint
  // color back through the chain does. A renamed-and-swapped copy must
  // still canonicalize identically.
  Instance instance(&schema_);
  Value n1 = symbols_.FreshNull();
  Value n2 = symbols_.FreshNull();
  Value n3 = symbols_.FreshNull();
  Value n4 = symbols_.FreshNull();
  instance.AddFact(0, {a_, n1});
  instance.AddFact(0, {n1, n2});
  instance.AddFact(0, {n2, b_});
  instance.AddFact(0, {a_, n3});
  instance.AddFact(0, {n3, n4});
  instance.AddFact(0, {n4, c_});
  // Swap the chains' null ids so the id-order tie-break would pick the
  // other chain first.
  Instance swapped = Rename(instance, {{n1, Value::Null(800)},
                                       {n2, Value::Null(801)},
                                       {n3, Value::Null(100)},
                                       {n4, Value::Null(101)}});
  EXPECT_EQ(CanonicalizeNulls(instance).CanonicalFingerprint(),
            CanonicalizeNulls(swapped).CanonicalFingerprint());
  // And the two chains are genuinely distinguished: the canonical form is
  // isomorphic to the original, not a collapse.
  Instance canon = CanonicalizeNulls(instance);
  EXPECT_EQ(canon.ResolvedFactCount(), instance.ResolvedFactCount());
  EXPECT_TRUE(FindInstanceHomomorphism(canon, instance).has_value());
}

TEST_F(CanonicalizeNullsTest, AutomorphicNullsCanonicalizeStably) {
  // A fully symmetric pair: E(a, n1), E(a, n2) has an automorphism
  // swapping n1 and n2. Refinement cannot split them; individualization
  // must still produce the same canonical form for both labelings.
  Instance instance(&schema_);
  Value n1 = symbols_.FreshNull();
  Value n2 = symbols_.FreshNull();
  instance.AddFact(0, {a_, n1});
  instance.AddFact(0, {a_, n2});
  Instance renamed = Rename(instance, {{n1, Value::Null(600)},
                                       {n2, Value::Null(42)}});
  EXPECT_EQ(CanonicalizeNulls(instance).CanonicalFingerprint(),
            CanonicalizeNulls(renamed).CanonicalFingerprint());
  EXPECT_EQ(CanonicalizeNulls(instance).ResolvedFactCount(), 2u);
}

}  // namespace
}  // namespace pdx
