#include "logic/datalog.h"

#include "gtest/gtest.h"

namespace pdx {
namespace {

class DatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.AddRelation("E", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("T", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("U", 1).ok());
    e_ = schema_.FindRelation("E").value();
    t_ = schema_.FindRelation("T").value();
    a_ = symbols_.InternConstant("a");
    b_ = symbols_.InternConstant("b");
    c_ = symbols_.InternConstant("c");
    d_ = symbols_.InternConstant("d");
  }

  DatalogProgram Parse(const char* text) {
    auto program = ParseDatalogProgram(text, schema_, &symbols_);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    return std::move(program).value();
  }

  Schema schema_;
  SymbolTable symbols_;
  RelationId e_ = 0, t_ = 0;
  Value a_, b_, c_, d_;
};

TEST_F(DatalogTest, ParsesBothSyntaxes) {
  DatalogProgram turnstile =
      Parse("T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z).");
  EXPECT_EQ(turnstile.rules.size(), 2u);
  DatalogProgram arrows =
      Parse("E(x,y) -> T(x,y). T(x,y) & E(y,z) -> T(x,z).");
  EXPECT_EQ(arrows.rules.size(), 2u);
}

TEST_F(DatalogTest, RejectsNonDatalogRules) {
  // Existential head variable.
  EXPECT_FALSE(
      ParseDatalogProgram("E(x,y) -> exists z: T(x,z).", schema_, &symbols_)
          .ok());
  // Multiple head atoms.
  EXPECT_FALSE(
      ParseDatalogProgram("E(x,y) -> T(x,y) & T(y,x).", schema_, &symbols_)
          .ok());
  // Egd.
  EXPECT_FALSE(
      ParseDatalogProgram("T(x,y) & T(x,z) -> y = z.", schema_, &symbols_)
          .ok());
}

TEST_F(DatalogTest, ComputesTransitiveClosure) {
  DatalogProgram program =
      Parse("T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z).");
  Instance input(&schema_);
  input.AddFact(e_, {a_, b_});
  input.AddFact(e_, {b_, c_});
  input.AddFact(e_, {c_, d_});
  DatalogStats stats;
  Instance fixpoint = EvaluateDatalog(program, input, &stats);
  // T = all 6 pairs reachable along the path a->b->c->d.
  EXPECT_EQ(fixpoint.tuples(t_).size(), 6u);
  EXPECT_TRUE(fixpoint.Contains(t_, {a_, d_}));
  EXPECT_FALSE(fixpoint.Contains(t_, {d_, a_}));
  EXPECT_EQ(stats.derived_facts, 6);
  // Semi-naive: path length 3 needs 3 derivation rounds (+1 to detect the
  // fixpoint).
  EXPECT_LE(stats.iterations, 5);
}

TEST_F(DatalogTest, CyclesConverge) {
  DatalogProgram program =
      Parse("T(x,y) :- E(x,y). T(x,z) :- T(x,y), T(y,z).");
  Instance input(&schema_);
  input.AddFact(e_, {a_, b_});
  input.AddFact(e_, {b_, a_});
  Instance fixpoint = EvaluateDatalog(program, input);
  // Closure of a 2-cycle: all 4 pairs.
  EXPECT_EQ(fixpoint.tuples(t_).size(), 4u);
}

TEST_F(DatalogTest, EmptyProgramIsIdentity) {
  DatalogProgram program;
  Instance input(&schema_);
  input.AddFact(e_, {a_, b_});
  Instance fixpoint = EvaluateDatalog(program, input);
  EXPECT_TRUE(fixpoint.FactsEqual(input));
}

TEST_F(DatalogTest, ConstantsInRules) {
  DatalogProgram program = Parse("U(x) :- E('a', x).");
  Instance input(&schema_);
  input.AddFact(e_, {a_, b_});
  input.AddFact(e_, {b_, c_});
  Instance fixpoint = EvaluateDatalog(program, input);
  RelationId u = schema_.FindRelation("U").value();
  ASSERT_EQ(fixpoint.tuples(u).size(), 1u);
  EXPECT_EQ(fixpoint.tuples(u)[0][0], b_);
}

TEST_F(DatalogTest, IsClosedUnder) {
  DatalogProgram program = Parse("T(x,y) :- E(x,y).");
  Instance open_instance(&schema_);
  open_instance.AddFact(e_, {a_, b_});
  EXPECT_FALSE(IsClosedUnder(program, open_instance));
  Instance closed_instance = open_instance;
  closed_instance.AddFact(t_, {a_, b_});
  EXPECT_TRUE(IsClosedUnder(program, closed_instance));
}

TEST_F(DatalogTest, IntensionalRelations) {
  DatalogProgram program = Parse("T(x,y) :- E(x,y).");
  std::vector<bool> intensional = program.IntensionalRelations(schema_);
  EXPECT_FALSE(intensional[e_]);
  EXPECT_TRUE(intensional[t_]);
}

TEST_F(DatalogTest, ToStringRoundTrips) {
  DatalogProgram program =
      Parse("T(x,z) :- T(x,y), E(y,z).");
  std::string rendered = program.ToString(schema_, symbols_);
  DatalogProgram reparsed = Parse(rendered.c_str());
  EXPECT_EQ(reparsed.rules.size(), 1u);
  EXPECT_EQ(reparsed.ToString(schema_, symbols_), rendered);
}

// A PDMS-flavoured use: definitional mappings relate two peers' relations
// by a recursive program; consistency = closure under the program.
TEST_F(DatalogTest, DefinitionalMappingConsistency) {
  DatalogProgram definitional =
      Parse("T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z).");
  Instance peers(&schema_);
  peers.AddFact(e_, {a_, b_});
  peers.AddFact(e_, {b_, c_});
  EXPECT_FALSE(IsClosedUnder(definitional, peers));
  Instance consistent = EvaluateDatalog(definitional, peers);
  EXPECT_TRUE(IsClosedUnder(definitional, consistent));
}

}  // namespace
}  // namespace pdx
