#include "pde/setting_file.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace pdx {
namespace {

using testing_util::Unwrap;

constexpr char kExample1[] = R"(
# The paper's Example 1.
[source]
E/2
[target]
H/2
[st]
E(x,z) & E(z,y) -> H(x,y).
[ts]
H(x,y) -> E(x,y).
)";

TEST(SettingFileTest, ParsesFullFile) {
  SymbolTable symbols;
  PdeSetting setting = Unwrap(ParseSettingFile(kExample1, &symbols));
  EXPECT_EQ(setting.source_relation_count(), 1);
  EXPECT_EQ(setting.target_relation_count(), 1);
  EXPECT_EQ(setting.st_tgds().size(), 1u);
  EXPECT_EQ(setting.ts_tgds().size(), 1u);
  EXPECT_TRUE(setting.InCtract());
}

TEST(SettingFileTest, SectionsMayComeInAnyOrderAndRepeat) {
  SymbolTable symbols;
  PdeSetting setting = Unwrap(ParseSettingFile(
      "[target]\nH/2\n[source]\nE/2\n[st]\nE(x,y) -> H(x,y).\n"
      "[source]\nD/1\n",
      &symbols));
  EXPECT_EQ(setting.source_relation_count(), 2);
}

TEST(SettingFileTest, TargetConstraintsSection) {
  SymbolTable symbols;
  PdeSetting setting = Unwrap(ParseSettingFile(
      "[source]\nE/2\n[target]\nH/2\n[st]\nE(x,y) -> H(x,y).\n"
      "[t]\nH(x,y) & H(x,z) -> y = z.\n",
      &symbols));
  EXPECT_EQ(setting.target_egds().size(), 1u);
  EXPECT_TRUE(setting.HasTargetConstraints());
}

TEST(SettingFileTest, CommentsEverywhere) {
  SymbolTable symbols;
  PdeSetting setting = Unwrap(ParseSettingFile(
      "# leading\n[source] # side\nE/2 # arity two\n[target]\nH/2\n"
      "[st]\nE(x,y) -> H(x,y). # copy\n",
      &symbols));
  EXPECT_EQ(setting.st_tgds().size(), 1u);
}

TEST(SettingFileTest, RejectsMalformedInput) {
  SymbolTable symbols;
  // Content before any section.
  EXPECT_FALSE(ParseSettingFile("E/2\n[source]\n", &symbols).ok());
  // Unknown section.
  EXPECT_FALSE(
      ParseSettingFile("[source]\nE/2\n[bogus]\n", &symbols).ok());
  // Missing arity.
  EXPECT_FALSE(
      ParseSettingFile("[source]\nE\n[target]\nH/2\n", &symbols).ok());
  // Non-numeric arity.
  EXPECT_FALSE(
      ParseSettingFile("[source]\nE/two\n[target]\nH/2\n", &symbols).ok());
  // No target section.
  EXPECT_FALSE(ParseSettingFile("[source]\nE/2\n", &symbols).ok());
  // Bad dependency.
  EXPECT_FALSE(ParseSettingFile(
                   "[source]\nE/2\n[target]\nH/2\n[st]\nE(x) -> H(x,x).\n",
                   &symbols)
                   .ok());
}

// Absurd arities must come back as a clean Status — the digit
// accumulation is bounded, so a 30-digit arity can neither overflow int
// nor provoke a huge allocation downstream.
TEST(SettingFileTest, RejectsOutOfRangeArity) {
  SymbolTable symbols;
  EXPECT_FALSE(
      ParseSettingFile("[source]\nE/999999999999999999999999999999\n"
                       "[target]\nH/2\n",
                       &symbols)
          .ok());
  EXPECT_FALSE(
      ParseSettingFile("[source]\nE/1025\n[target]\nH/2\n", &symbols).ok());
  EXPECT_FALSE(
      ParseSettingFile("[source]\nE/-2\n[target]\nH/2\n", &symbols).ok());
  // The maximum itself is fine.
  EXPECT_TRUE(
      ParseSettingFile("[source]\nE/1024\n[target]\nH/2\n", &symbols).ok());
}

TEST(SettingFileTest, RoundTripsThroughFileText) {
  SymbolTable symbols;
  PdeSetting setting = Unwrap(ParseSettingFile(kExample1, &symbols));
  std::string rendered = SettingToFileText(setting, symbols);
  SymbolTable symbols2;
  PdeSetting reparsed = Unwrap(ParseSettingFile(rendered, &symbols2));
  EXPECT_EQ(reparsed.st_tgds().size(), setting.st_tgds().size());
  EXPECT_EQ(reparsed.ts_tgds().size(), setting.ts_tgds().size());
  EXPECT_EQ(SettingToFileText(reparsed, symbols2), rendered);
}

TEST(SettingFileTest, RoundTripsDisjunctiveAndEgds) {
  SymbolTable symbols;
  PdeSetting setting = Unwrap(ParseSettingFile(
      "[source]\nE/2\nR/1\n[target]\nH/2\n"
      "[st]\nE(x,y) -> exists u: H(x,u).\n"
      "[ts]\nH(x,u) -> (R(u)) | (E(u,u)).\n",
      &symbols));
  std::string rendered = SettingToFileText(setting, symbols);
  SymbolTable symbols2;
  PdeSetting reparsed = Unwrap(ParseSettingFile(rendered, &symbols2));
  EXPECT_EQ(reparsed.ts_disjunctive_tgds().size(), 1u);
}

TEST(SettingFileTest, LoadFromDiskAndMissingFile) {
  SymbolTable symbols;
  EXPECT_EQ(LoadSettingFile("/nonexistent/path.pdx", &symbols)
                .status()
                .code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace pdx
