// Cross-validation of the chase variants: the semi-naive (incremental)
// restricted chase must compute the same result as the naive one (up to
// null renaming), and the oblivious chase must produce a superset that
// still satisfies every dependency.

#include "gtest/gtest.h"
#include "chase/chase.h"
#include "logic/parser.h"
#include "workload/random.h"

namespace pdx {
namespace {

struct ChaseCase {
  const char* name;
  const char* dependencies;
};

class ChaseStrategyTest
    : public ::testing::TestWithParam<std::tuple<ChaseCase, uint64_t>> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.AddRelation("E", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("H", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("F", 2).ok());
  }

  Instance RandomStart(uint64_t seed) {
    Rng rng(seed);
    Instance instance(&schema_);
    int n = 6;
    for (int i = 0; i < 12; ++i) {
      Value u = symbols_.InternConstant("c" + std::to_string(
                                                  rng.UniformInt(n)));
      Value v = symbols_.InternConstant("c" + std::to_string(
                                                  rng.UniformInt(n)));
      instance.AddFact(rng.UniformInt(2) == 0 ? 0 : 1, {u, v});
    }
    return instance;
  }

  Schema schema_;
  SymbolTable symbols_;
};

TEST_P(ChaseStrategyTest, IncrementalMatchesNaive) {
  const auto& [chase_case, seed] = GetParam();
  auto deps = ParseDependencies(chase_case.dependencies, schema_, &symbols_);
  ASSERT_TRUE(deps.ok()) << deps.status().ToString();
  Instance start = RandomStart(seed);

  ChaseOptions naive_options;
  naive_options.incremental = false;
  ChaseResult naive =
      Chase(start, deps->tgds, deps->egds, &symbols_, naive_options);

  ChaseOptions incremental_options;
  incremental_options.incremental = true;
  ChaseResult incremental =
      Chase(start, deps->tgds, deps->egds, &symbols_, incremental_options);

  ASSERT_EQ(naive.outcome, incremental.outcome);
  if (naive.outcome != ChaseOutcome::kSuccess) return;
  // Same result instance up to renaming of invented nulls.
  EXPECT_EQ(naive.instance.CanonicalFingerprint(),
            incremental.instance.CanonicalFingerprint())
      << "naive:\n" << naive.instance.ToString(symbols_)
      << "\nincremental:\n" << incremental.instance.ToString(symbols_);
}

TEST_P(ChaseStrategyTest, ObliviousResultSatisfiesEverything) {
  const auto& [chase_case, seed] = GetParam();
  auto deps = ParseDependencies(chase_case.dependencies, schema_, &symbols_);
  ASSERT_TRUE(deps.ok()) << deps.status().ToString();
  Instance start = RandomStart(seed);

  ChaseOptions oblivious_options;
  oblivious_options.strategy = ChaseStrategy::kOblivious;
  ChaseResult oblivious =
      Chase(start, deps->tgds, deps->egds, &symbols_, oblivious_options);
  ChaseResult restricted = Chase(start, deps->tgds, deps->egds, &symbols_);

  ASSERT_EQ(oblivious.outcome, restricted.outcome);
  if (oblivious.outcome != ChaseOutcome::kSuccess) return;
  for (const Tgd& tgd : deps->tgds) {
    EXPECT_TRUE(SatisfiesTgd(oblivious.instance, tgd));
  }
  for (const Egd& egd : deps->egds) {
    EXPECT_TRUE(SatisfiesEgd(oblivious.instance, egd));
  }
  // The oblivious chase fires satisfied triggers too, so it is at least as
  // large as the restricted result.
  EXPECT_GE(oblivious.instance.fact_count(),
            restricted.instance.fact_count());
  EXPECT_GE(oblivious.nulls_created, restricted.nulls_created);
}

constexpr ChaseCase kCases[] = {
    {"FullComposition", "E(x,z) & E(z,y) -> H(x,y)."},
    {"ExistentialPipeline",
     "E(x,y) -> exists z: H(y,z). H(x,y) -> F(x,y)."},
    {"WithKeyEgd",
     "E(x,y) -> exists z: H(x,z). H(x,y) & H(x,z) -> y = z."},
    {"MultiHeadExistential",
     "E(x,y) -> exists u,v: H(x,u) & F(u,v)."},
    {"CrossFeeding",
     "E(x,y) -> H(x,y). H(x,y) -> F(y,x). E(x,y) & F(y,x) -> H(y,y)."},
};

INSTANTIATE_TEST_SUITE_P(
    Cases, ChaseStrategyTest,
    ::testing::Combine(::testing::ValuesIn(kCases),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    [](const ::testing::TestParamInfo<std::tuple<ChaseCase, uint64_t>>&
           info) {
      return std::string(std::get<0>(info.param).name) + "Seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ChaseStrategySpecialTest, ObliviousCreatesMoreNullsThanRestricted) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("E", 2).ok());
  ASSERT_TRUE(schema.AddRelation("H", 2).ok());
  SymbolTable symbols;
  auto deps =
      ParseDependencies("E(x,y) -> exists z: H(x,z).", schema, &symbols);
  ASSERT_TRUE(deps.ok());
  Instance start(&schema);
  Value a = symbols.InternConstant("a");
  Value b = symbols.InternConstant("b");
  Value c = symbols.InternConstant("c");
  start.AddFact(0, {a, b});
  start.AddFact(0, {a, c});
  // Restricted: one H(a, _) suffices for both triggers.
  ChaseResult restricted = Chase(start, deps->tgds, &symbols);
  EXPECT_EQ(restricted.nulls_created, 1);
  // Oblivious: both triggers fire.
  ChaseOptions options;
  options.strategy = ChaseStrategy::kOblivious;
  ChaseResult oblivious = Chase(start, deps->tgds, {}, &symbols, options);
  EXPECT_EQ(oblivious.nulls_created, 2);
}

TEST(ChaseStrategySpecialTest, IncrementalHandlesEgdSubstitutions) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("E", 2).ok());
  ASSERT_TRUE(schema.AddRelation("H", 2).ok());
  SymbolTable symbols;
  auto deps = ParseDependencies(
      "E(x,y) -> exists z: H(x,z). H(x,y) & H(x,z) -> y = z. "
      "H(x,y) -> E(x,y).",
      schema, &symbols);
  ASSERT_TRUE(deps.ok());
  Instance start(&schema);
  Value a = symbols.InternConstant("a");
  Value b = symbols.InternConstant("b");
  start.AddFact(0, {a, b});
  ChaseOptions options;
  options.incremental = true;
  ChaseResult result =
      Chase(start, deps->tgds, deps->egds, &symbols, options);
  ASSERT_EQ(result.outcome, ChaseOutcome::kSuccess);
  DependencySet set;
  set.tgds = deps->tgds;
  set.egds = deps->egds;
  EXPECT_TRUE(SatisfiesAll(result.instance, set));
}

TEST(ChaseStrategySpecialTest, ObliviousRespectsBudget) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("H", 2).ok());
  SymbolTable symbols;
  auto deps =
      ParseDependencies("H(x,y) -> exists z: H(y,z).", schema, &symbols);
  ASSERT_TRUE(deps.ok());
  Instance start(&schema);
  start.AddFact(0, {symbols.InternConstant("a"),
                    symbols.InternConstant("b")});
  ChaseOptions options;
  options.strategy = ChaseStrategy::kOblivious;
  options.max_steps = 50;
  ChaseResult result = Chase(start, deps->tgds, {}, &symbols, options);
  EXPECT_EQ(result.outcome, ChaseOutcome::kBudgetExhausted);
}

}  // namespace
}  // namespace pdx
