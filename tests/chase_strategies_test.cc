// Cross-validation of the chase variants: the delta-driven restricted
// chase must compute the same result as the naive full-rescan one (up to
// null renaming), and the oblivious chase must produce a superset that
// still satisfies every dependency. Randomized generated settings widen
// the net beyond the hand-picked dependency sets.

#include <algorithm>

#include "gtest/gtest.h"
#include "chase/chase.h"
#include "hom/instance_hom.h"
#include "logic/parser.h"
#include "tests/test_util.h"
#include "workload/random.h"
#include "workload/setting_gen.h"

namespace pdx {
namespace {

using testing_util::Unwrap;

ChaseOptions NaiveOptions() {
  ChaseOptions options;
  options.strategy = ChaseStrategy::kRestrictedNaive;
  return options;
}

ChaseOptions DeltaOptions() {
  ChaseOptions options;
  options.strategy = ChaseStrategy::kRestricted;
  return options;
}

// Largest head atom count across `tgds`: a restricted chase step fires a
// violated trigger, so it adds between 1 and this many facts, bounding
// steps by the growth in both directions.
int64_t MaxHeadAtoms(const std::vector<Tgd>& tgds) {
  int64_t max_head = 1;
  for (const Tgd& tgd : tgds) {
    max_head = std::max(max_head, static_cast<int64_t>(tgd.head.size()));
  }
  return max_head;
}

struct ChaseCase {
  const char* name;
  const char* dependencies;
};

class ChaseStrategyTest
    : public ::testing::TestWithParam<std::tuple<ChaseCase, uint64_t>> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.AddRelation("E", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("H", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("F", 2).ok());
  }

  Instance RandomStart(uint64_t seed) {
    Rng rng(seed);
    Instance instance(&schema_);
    int n = 6;
    for (int i = 0; i < 12; ++i) {
      Value u = symbols_.InternConstant("c" + std::to_string(
                                                  rng.UniformInt(n)));
      Value v = symbols_.InternConstant("c" + std::to_string(
                                                  rng.UniformInt(n)));
      instance.AddFact(rng.UniformInt(2) == 0 ? 0 : 1, {u, v});
    }
    return instance;
  }

  Schema schema_;
  SymbolTable symbols_;
};

TEST_P(ChaseStrategyTest, DeltaMatchesNaive) {
  const auto& [chase_case, seed] = GetParam();
  auto deps = ParseDependencies(chase_case.dependencies, schema_, &symbols_);
  ASSERT_TRUE(deps.ok()) << deps.status().ToString();
  Instance start = RandomStart(seed);

  ChaseResult naive =
      Chase(start, deps->tgds, deps->egds, &symbols_, NaiveOptions());
  ChaseResult delta =
      Chase(start, deps->tgds, deps->egds, &symbols_, DeltaOptions());

  ASSERT_EQ(naive.outcome, delta.outcome);
  if (naive.outcome != ChaseOutcome::kSuccess) return;
  // Same result instance up to renaming of invented nulls.
  EXPECT_EQ(naive.instance.CanonicalFingerprint(),
            delta.instance.CanonicalFingerprint())
      << "naive:\n" << naive.instance.ToString(symbols_)
      << "\ndelta:\n" << delta.instance.ToString(symbols_);
}

TEST_P(ChaseStrategyTest, ObliviousResultSatisfiesEverything) {
  const auto& [chase_case, seed] = GetParam();
  auto deps = ParseDependencies(chase_case.dependencies, schema_, &symbols_);
  ASSERT_TRUE(deps.ok()) << deps.status().ToString();
  Instance start = RandomStart(seed);

  ChaseOptions oblivious_options;
  oblivious_options.strategy = ChaseStrategy::kOblivious;
  ChaseResult oblivious =
      Chase(start, deps->tgds, deps->egds, &symbols_, oblivious_options);
  ChaseResult restricted = Chase(start, deps->tgds, deps->egds, &symbols_);

  ASSERT_EQ(oblivious.outcome, restricted.outcome);
  if (oblivious.outcome != ChaseOutcome::kSuccess) return;
  for (const Tgd& tgd : deps->tgds) {
    EXPECT_TRUE(SatisfiesTgd(oblivious.instance, tgd));
  }
  for (const Egd& egd : deps->egds) {
    EXPECT_TRUE(SatisfiesEgd(oblivious.instance, egd));
  }
  // The oblivious chase fires satisfied triggers too, so it is at least as
  // large as the restricted result.
  EXPECT_GE(oblivious.instance.fact_count(),
            restricted.instance.fact_count());
  EXPECT_GE(oblivious.nulls_created, restricted.nulls_created);
}

constexpr ChaseCase kCases[] = {
    {"FullComposition", "E(x,z) & E(z,y) -> H(x,y)."},
    {"ExistentialPipeline",
     "E(x,y) -> exists z: H(y,z). H(x,y) -> F(x,y)."},
    {"WithKeyEgd",
     "E(x,y) -> exists z: H(x,z). H(x,y) & H(x,z) -> y = z."},
    {"MultiHeadExistential",
     "E(x,y) -> exists u,v: H(x,u) & F(u,v)."},
    {"CrossFeeding",
     "E(x,y) -> H(x,y). H(x,y) -> F(y,x). E(x,y) & F(y,x) -> H(y,y)."},
};

INSTANTIATE_TEST_SUITE_P(
    Cases, ChaseStrategyTest,
    ::testing::Combine(::testing::ValuesIn(kCases),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    [](const ::testing::TestParamInfo<std::tuple<ChaseCase, uint64_t>>&
           info) {
      return std::string(std::get<0>(info.param).name) + "Seed" +
             std::to_string(std::get<1>(info.param));
    });

// Randomized settings from the workload generator: chase a combined
// instance with Σ_st ∪ Σ_ts under both strategies and require agreement on
// outcome, homomorphic equivalence, and step bounds. The restricted chase
// is not confluent — different trigger orders can satisfy an existential
// with different witnesses (e.g. a pre-existing fact vs. a fresh null), so
// the two engines' results are only guaranteed equivalent up to
// homomorphism, not fingerprint-identical (the fixed-case suite above
// pins fingerprint equality where the dependency sets are confluent).
// The combination need not be weakly acyclic, so a step budget guards
// divergence; both engines must then agree they exhausted it.
class RandomSettingChaseTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomSettingChaseTest, DeltaMatchesNaiveOnGeneratedSettings) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  SymbolTable symbols;
  SettingGenOptions opts;
  opts.max_arity = 2;
  opts.st_tgd_count = 2;
  opts.ts_tgd_count = 2;
  GeneratedSetting generated =
      Unwrap(seed % 2 == 0 ? MakeRandomLavSetting(opts, &rng, &symbols)
                           : MakeRandomFullStSetting(opts, &rng, &symbols));
  const PdeSetting& setting = generated.setting;
  Instance source = MakeRandomSourceInstance(setting, 6, 3, &rng, &symbols);
  Instance target = MakeRandomTargetInstance(setting, 3, 3, &rng, &symbols);
  Instance start = setting.CombineInstances(source, target);

  std::vector<Tgd> tgds = setting.st_tgds();
  tgds.insert(tgds.end(), setting.ts_tgds().begin(),
              setting.ts_tgds().end());

  // Σst ∪ Σts need not be weakly acyclic, and the naive engine pays a full
  // rescan per step, so the budget is kept small; on divergent seeds both
  // engines must agree they exhausted it.
  ChaseOptions naive_options = NaiveOptions();
  naive_options.max_steps = 500;
  ChaseOptions delta_options = DeltaOptions();
  delta_options.max_steps = 500;
  ChaseResult naive = Chase(start, tgds, {}, &symbols, naive_options);
  ChaseResult delta = Chase(start, tgds, {}, &symbols, delta_options);

  ASSERT_EQ(naive.outcome, delta.outcome)
      << "seed " << seed << "\nΣst:\n" << generated.sigma_st << "\nΣts:\n"
      << generated.sigma_ts;
  if (naive.outcome != ChaseOutcome::kSuccess) return;

  // Homomorphic equivalence in both directions: the two results represent
  // the same space of solutions.
  EXPECT_TRUE(
      FindInstanceHomomorphism(naive.instance, delta.instance).has_value())
      << "seed " << seed << "\nΣst:\n" << generated.sigma_st << "\nΣts:\n"
      << generated.sigma_ts << "\nnaive:\n" << naive.instance.ToString(symbols)
      << "\ndelta:\n" << delta.instance.ToString(symbols);
  EXPECT_TRUE(
      FindInstanceHomomorphism(delta.instance, naive.instance).has_value())
      << "seed " << seed << "\nnaive:\n" << naive.instance.ToString(symbols)
      << "\ndelta:\n" << delta.instance.ToString(symbols);
  // Ground facts (no nulls involved) must agree exactly.
  EXPECT_EQ(naive.instance.Nulls().empty(), delta.instance.Nulls().empty());

  // Step bounds: every restricted step fires a violated trigger, adding
  // between 1 and max-head-atoms facts, so either engine's step count is
  // bounded by the other's scaled by that factor.
  int64_t max_head = MaxHeadAtoms(tgds);
  EXPECT_LE(delta.steps, naive.steps * max_head)
      << "seed " << seed;
  EXPECT_LE(naive.steps, delta.steps * max_head)
      << "seed " << seed;
  int64_t added = static_cast<int64_t>(naive.instance.fact_count()) -
                  static_cast<int64_t>(start.fact_count());
  EXPECT_GE(delta.steps * max_head, added) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSettingChaseTest,
                         ::testing::Range(uint64_t{1}, uint64_t{17}));

TEST(ChaseStrategySpecialTest, ObliviousCreatesMoreNullsThanRestricted) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("E", 2).ok());
  ASSERT_TRUE(schema.AddRelation("H", 2).ok());
  SymbolTable symbols;
  auto deps =
      ParseDependencies("E(x,y) -> exists z: H(x,z).", schema, &symbols);
  ASSERT_TRUE(deps.ok());
  Instance start(&schema);
  Value a = symbols.InternConstant("a");
  Value b = symbols.InternConstant("b");
  Value c = symbols.InternConstant("c");
  start.AddFact(0, {a, b});
  start.AddFact(0, {a, c});
  // Restricted: one H(a, _) suffices for both triggers.
  ChaseResult restricted = Chase(start, deps->tgds, &symbols);
  EXPECT_EQ(restricted.nulls_created, 1);
  // Oblivious: both triggers fire.
  ChaseOptions options;
  options.strategy = ChaseStrategy::kOblivious;
  ChaseResult oblivious = Chase(start, deps->tgds, {}, &symbols, options);
  EXPECT_EQ(oblivious.nulls_created, 2);
}

TEST(ChaseStrategySpecialTest, DeltaHandlesEgdSubstitutions) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("E", 2).ok());
  ASSERT_TRUE(schema.AddRelation("H", 2).ok());
  SymbolTable symbols;
  auto deps = ParseDependencies(
      "E(x,y) -> exists z: H(x,z). H(x,y) & H(x,z) -> y = z. "
      "H(x,y) -> E(x,y).",
      schema, &symbols);
  ASSERT_TRUE(deps.ok());
  Instance start(&schema);
  Value a = symbols.InternConstant("a");
  Value b = symbols.InternConstant("b");
  start.AddFact(0, {a, b});
  ChaseResult result =
      Chase(start, deps->tgds, deps->egds, &symbols, DeltaOptions());
  ASSERT_EQ(result.outcome, ChaseOutcome::kSuccess);
  DependencySet set;
  set.tgds = deps->tgds;
  set.egds = deps->egds;
  EXPECT_TRUE(SatisfiesAll(result.instance, set));
}

// An egd substitution must dirty only the relations it rewrote: H holds
// the nulls being merged while E stays untouched, and the chase must still
// re-fire the H-consuming tgd after each merge.
TEST(ChaseStrategySpecialTest, DeltaReexaminesRewrittenRelations) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("E", 2).ok());
  ASSERT_TRUE(schema.AddRelation("H", 2).ok());
  ASSERT_TRUE(schema.AddRelation("F", 2).ok());
  SymbolTable symbols;
  auto deps = ParseDependencies(
      "E(x,y) -> exists z: H(x,z). "
      "H(x,y) & H(x,z) -> y = z. "
      "H(x,y) -> F(x,y).",
      schema, &symbols);
  ASSERT_TRUE(deps.ok());
  Instance start(&schema);
  Value a = symbols.InternConstant("a");
  Value b = symbols.InternConstant("b");
  Value c = symbols.InternConstant("c");
  start.AddFact(0, {a, b});
  start.AddFact(0, {a, c});

  ChaseResult naive =
      Chase(start, deps->tgds, deps->egds, &symbols, NaiveOptions());
  ChaseResult delta =
      Chase(start, deps->tgds, deps->egds, &symbols, DeltaOptions());
  ASSERT_EQ(naive.outcome, ChaseOutcome::kSuccess);
  ASSERT_EQ(delta.outcome, ChaseOutcome::kSuccess);
  EXPECT_EQ(naive.instance.CanonicalFingerprint(),
            delta.instance.CanonicalFingerprint());
  DependencySet set;
  set.tgds = deps->tgds;
  set.egds = deps->egds;
  EXPECT_TRUE(SatisfiesAll(delta.instance, set));
}

TEST(ChaseStrategySpecialTest, ObliviousRespectsBudget) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("H", 2).ok());
  SymbolTable symbols;
  auto deps =
      ParseDependencies("H(x,y) -> exists z: H(y,z).", schema, &symbols);
  ASSERT_TRUE(deps.ok());
  Instance start(&schema);
  start.AddFact(0, {symbols.InternConstant("a"),
                    symbols.InternConstant("b")});
  ChaseOptions options;
  options.strategy = ChaseStrategy::kOblivious;
  options.max_steps = 50;
  ChaseResult result = Chase(start, deps->tgds, {}, &symbols, options);
  EXPECT_EQ(result.outcome, ChaseOutcome::kBudgetExhausted);
}

TEST(ChaseStrategySpecialTest, NaiveRespectsBudget) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("H", 2).ok());
  SymbolTable symbols;
  auto deps =
      ParseDependencies("H(x,y) -> exists z: H(y,z).", schema, &symbols);
  ASSERT_TRUE(deps.ok());
  Instance start(&schema);
  start.AddFact(0, {symbols.InternConstant("a"),
                    symbols.InternConstant("b")});
  for (ChaseStrategy strategy :
       {ChaseStrategy::kRestricted, ChaseStrategy::kRestrictedNaive}) {
    ChaseOptions options;
    options.strategy = strategy;
    options.max_steps = 50;
    ChaseResult result = Chase(start, deps->tgds, {}, &symbols, options);
    EXPECT_EQ(result.outcome, ChaseOutcome::kBudgetExhausted);
  }
}

}  // namespace
}  // namespace pdx
