// Unit tests for the union-find value layer: class semantics (constants
// win, size-based winner among nulls, constant/constant conflicts),
// reassigned reporting, and the copy-on-write isolation Instance snapshots
// rely on.

#include "relational/value_resolver.h"

#include <algorithm>

#include "gtest/gtest.h"
#include "relational/value.h"

namespace pdx {
namespace {

class ValueResolverTest : public ::testing::Test {
 protected:
  Value Null() { return symbols_.FreshNull(); }
  Value Const(const char* name) { return symbols_.InternConstant(name); }

  static bool Contains(const std::vector<Value>& values, Value v) {
    return std::find(values.begin(), values.end(), v) != values.end();
  }

  SymbolTable symbols_;
};

TEST_F(ValueResolverTest, TrivialResolverIsIdentity) {
  ValueResolver resolver;
  Value n = Null();
  Value a = Const("a");
  EXPECT_TRUE(resolver.trivial());
  EXPECT_EQ(resolver.Resolve(n), n);
  EXPECT_EQ(resolver.Resolve(a), a);
  EXPECT_TRUE(resolver.SameClass(n, n));
  EXPECT_FALSE(resolver.SameClass(n, a));
  EXPECT_EQ(resolver.version(), 0u);
  EXPECT_EQ(resolver.class_count(), 0u);
  EXPECT_EQ(resolver.ClassMembers(n), nullptr);
}

TEST_F(ValueResolverTest, ConstantWinsUnionWithNull) {
  ValueResolver resolver;
  Value n = Null();
  Value a = Const("a");
  // Both argument orders: the constant must become the root.
  ValueResolver::UnionResult result = resolver.Union(n, a);
  EXPECT_TRUE(result.merged);
  EXPECT_FALSE(result.conflict);
  EXPECT_EQ(result.winner, a);
  EXPECT_EQ(result.loser, n);
  EXPECT_EQ(resolver.Resolve(n), a);
  EXPECT_EQ(resolver.Resolve(a), a);

  Value n2 = Null();
  result = resolver.Union(a, n2);
  EXPECT_TRUE(result.merged);
  EXPECT_EQ(result.winner, a);
  EXPECT_EQ(resolver.Resolve(n2), a);
  EXPECT_EQ(resolver.class_count(), 1u);
  EXPECT_EQ(resolver.version(), 2u);
}

TEST_F(ValueResolverTest, ConstantConflictReportsWithoutMutating) {
  ValueResolver resolver;
  Value a = Const("a");
  Value b = Const("b");
  ValueResolver::UnionResult result = resolver.Union(a, b);
  EXPECT_FALSE(result.merged);
  EXPECT_TRUE(result.conflict);
  EXPECT_EQ(resolver.Resolve(a), a);
  EXPECT_EQ(resolver.Resolve(b), b);
  EXPECT_EQ(resolver.version(), 0u);

  // The conflict also surfaces through merged classes: n ~ a and m ~ b
  // cannot be joined.
  Value n = Null();
  Value m = Null();
  EXPECT_TRUE(resolver.Union(n, a).merged);
  EXPECT_TRUE(resolver.Union(m, b).merged);
  result = resolver.Union(n, m);
  EXPECT_TRUE(result.conflict);
  EXPECT_EQ(result.winner, resolver.Resolve(n));
  EXPECT_EQ(result.loser, resolver.Resolve(m));
  EXPECT_EQ(resolver.Resolve(n), a);
  EXPECT_EQ(resolver.Resolve(m), b);
}

TEST_F(ValueResolverTest, SelfAndRepeatUnionsAreNoOps) {
  ValueResolver resolver;
  Value n1 = Null();
  Value n2 = Null();
  EXPECT_FALSE(resolver.Union(n1, n1).merged);
  EXPECT_TRUE(resolver.Union(n1, n2).merged);
  ValueResolver::UnionResult repeat = resolver.Union(n1, n2);
  EXPECT_FALSE(repeat.merged);
  EXPECT_FALSE(repeat.conflict);
  EXPECT_EQ(resolver.version(), 1u);
}

TEST_F(ValueResolverTest, LargerNullClassWinsAndReassignedIsLosingClass) {
  ValueResolver resolver;
  Value n1 = Null(), n2 = Null(), n3 = Null(), n4 = Null(), n5 = Null();
  // Build {n1,n2,n3} and {n4,n5}.
  ASSERT_TRUE(resolver.Union(n1, n2).merged);
  ASSERT_TRUE(resolver.Union(n1, n3).merged);
  ASSERT_TRUE(resolver.Union(n4, n5).merged);
  Value big_root = resolver.Resolve(n1);
  Value small_root = resolver.Resolve(n4);

  ValueResolver::UnionResult result = resolver.Union(n5, n2);
  EXPECT_TRUE(result.merged);
  EXPECT_EQ(result.winner, big_root);
  EXPECT_EQ(result.loser, small_root);
  // Exactly the losing class {n4, n5} was reassigned.
  EXPECT_EQ(result.reassigned.size(), 2u);
  EXPECT_TRUE(Contains(result.reassigned, n4));
  EXPECT_TRUE(Contains(result.reassigned, n5));
  for (Value v : {n1, n2, n3, n4, n5}) {
    EXPECT_EQ(resolver.Resolve(v), big_root);
  }

  // The merged class lists all five members under the surviving root.
  const std::vector<Value>* members = resolver.ClassMembers(big_root);
  ASSERT_NE(members, nullptr);
  EXPECT_EQ(members->size(), 5u);
  EXPECT_EQ(resolver.class_count(), 1u);
}

TEST_F(ValueResolverTest, ResolveNeverChasesChains) {
  // Eager relinking: after any sequence of unions every member points
  // directly at the final root, including members that joined early.
  ValueResolver resolver;
  std::vector<Value> nulls;
  for (int i = 0; i < 16; ++i) nulls.push_back(Null());
  for (int i = 1; i < 16; ++i) {
    ASSERT_TRUE(resolver.Union(nulls[i - 1], nulls[i]).merged);
  }
  Value root = resolver.Resolve(nulls[0]);
  const std::vector<Value>* members = resolver.ClassMembers(root);
  ASSERT_NE(members, nullptr);
  EXPECT_EQ(members->size(), 16u);
  Value late_constant = Const("c");
  ValueResolver::UnionResult result =
      resolver.Union(nulls[7], late_constant);
  EXPECT_TRUE(result.merged);
  EXPECT_EQ(result.winner, late_constant);
  EXPECT_EQ(result.reassigned.size(), 16u);
  for (Value v : nulls) EXPECT_EQ(resolver.Resolve(v), late_constant);
}

TEST_F(ValueResolverTest, CopiesAreIsolatedCopyOnWrite) {
  ValueResolver base;
  Value n1 = Null(), n2 = Null(), n3 = Null();
  Value a = Const("a"), b = Const("b");
  ASSERT_TRUE(base.Union(n1, n2).merged);

  // A copy starts identical, then diverges without affecting the base.
  ValueResolver left = base;
  ValueResolver right = base;
  EXPECT_EQ(left.Resolve(n1), base.Resolve(n1));
  ASSERT_TRUE(left.Union(n1, a).merged);
  ASSERT_TRUE(right.Union(n1, b).merged);
  ASSERT_TRUE(right.Union(n3, b).merged);

  EXPECT_EQ(left.Resolve(n2), a);
  EXPECT_EQ(right.Resolve(n2), b);
  EXPECT_EQ(right.Resolve(n3), b);
  EXPECT_TRUE(base.Resolve(n1).is_null());
  EXPECT_EQ(base.Resolve(n3), n3);
  EXPECT_EQ(base.version(), 1u);
  EXPECT_EQ(left.version(), 2u);
  EXPECT_EQ(right.version(), 3u);
}

TEST_F(ValueResolverTest, MutatingTheOriginalDoesNotLeakIntoCopies) {
  ValueResolver base;
  Value n1 = Null(), n2 = Null();
  ValueResolver copy = base;  // copy of the trivial resolver
  ASSERT_TRUE(base.Union(n1, n2).merged);
  EXPECT_TRUE(copy.trivial());
  EXPECT_EQ(copy.Resolve(n1), n1);

  ValueResolver copy2 = base;  // copy of a non-trivial resolver
  Value a = Const("a");
  ASSERT_TRUE(base.Union(n2, a).merged);
  EXPECT_EQ(base.Resolve(n1), a);
  EXPECT_TRUE(copy2.Resolve(n1).is_null());
  EXPECT_EQ(copy2.version(), 1u);
}

}  // namespace
}  // namespace pdx
