#include "base/status.h"

#include <memory>
#include <string>

#include "gtest/gtest.h"

namespace pdx {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, FactoriesProduceMatchingCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

namespace {

Status FailIfNegative(int x) {
  if (x < 0) return InvalidArgumentError("negative");
  return OkStatus();
}

StatusOr<int> DoubleIfPositive(int x) {
  PDX_RETURN_IF_ERROR(FailIfNegative(x));
  return x * 2;
}

StatusOr<int> QuadrupleIfPositive(int x) {
  PDX_ASSIGN_OR_RETURN(int doubled, DoubleIfPositive(x));
  return doubled * 2;
}

}  // namespace

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_FALSE(DoubleIfPositive(-1).ok());
  EXPECT_EQ(DoubleIfPositive(3).value(), 6);
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  EXPECT_FALSE(QuadrupleIfPositive(-1).ok());
  EXPECT_EQ(QuadrupleIfPositive(3).value(), 12);
}

}  // namespace
}  // namespace pdx
