#include "hom/core.h"

#include "gtest/gtest.h"
#include "chase/chase.h"
#include "pde/data_exchange.h"
#include "pde/solution.h"
#include "tests/test_util.h"

namespace pdx {
namespace {

using testing_util::ParseOrDie;
using testing_util::Unwrap;

class CoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.AddRelation("E", 2).ok());
    a_ = symbols_.InternConstant("a");
    b_ = symbols_.InternConstant("b");
  }

  Schema schema_;
  SymbolTable symbols_;
  Value a_, b_;
};

TEST_F(CoreTest, GroundInstanceIsItsOwnCore) {
  Instance instance(&schema_);
  instance.AddFact(0, {a_, b_});
  instance.AddFact(0, {b_, a_});
  EXPECT_TRUE(IsCore(instance));
  CoreStats stats;
  Instance core = ComputeCore(instance, &stats);
  EXPECT_TRUE(core.FactsEqual(instance));
  EXPECT_EQ(stats.retractions, 0);
}

TEST_F(CoreTest, RedundantNullFactFoldsIntoGroundFact) {
  // E(a, n) is subsumed by E(a, b): the core drops it.
  Instance instance(&schema_);
  Value n = symbols_.FreshNull();
  instance.AddFact(0, {a_, b_});
  instance.AddFact(0, {a_, n});
  EXPECT_FALSE(IsCore(instance));
  CoreStats stats;
  Instance core = ComputeCore(instance, &stats);
  EXPECT_EQ(core.fact_count(), 1u);
  EXPECT_TRUE(core.Contains(0, {a_, b_}));
  EXPECT_EQ(stats.facts_removed, 1);
}

TEST_F(CoreTest, ChainOfNullsFoldsToSingleEdgeWhenLoopExists) {
  // E(a,a) plus a null chain a -> n1 -> n2: everything folds onto the
  // self-loop.
  Instance instance(&schema_);
  Value n1 = symbols_.FreshNull();
  Value n2 = symbols_.FreshNull();
  instance.AddFact(0, {a_, a_});
  instance.AddFact(0, {a_, n1});
  instance.AddFact(0, {n1, n2});
  Instance core = ComputeCore(instance);
  EXPECT_EQ(core.fact_count(), 1u);
  EXPECT_TRUE(core.Contains(0, {a_, a_}));
}

TEST_F(CoreTest, NonRedundantNullsSurvive) {
  // E(a, n): nothing subsumes it; the core keeps it.
  Instance instance(&schema_);
  Value n = symbols_.FreshNull();
  instance.AddFact(0, {a_, n});
  EXPECT_TRUE(IsCore(instance));
  Instance core = ComputeCore(instance);
  EXPECT_EQ(core.fact_count(), 1u);
}

TEST_F(CoreTest, IsomorphicInstancesHaveIsomorphicCores) {
  for (uint64_t variant = 0; variant < 2; ++variant) {
    Instance instance(&schema_);
    Value n1 = symbols_.FreshNull();
    Value n2 = symbols_.FreshNull();
    instance.AddFact(0, {a_, b_});
    if (variant == 0) {
      instance.AddFact(0, {a_, n1});
      instance.AddFact(0, {n1, n2});
    } else {
      instance.AddFact(0, {n2, n1});  // reversed roles
      instance.AddFact(0, {a_, n2});
    }
    Instance core = ComputeCore(instance);
    // Both variants: a->b, plus the chain a->n->m which cannot fold onto
    // a->b entirely (n has an outgoing edge, b does not)... it can fold
    // n->b? then needs b->m... no b successor. So the chain survives as
    // a->n, n->m? But a->n maps to a->b only if n ↦ b and then n->m needs
    // b->m: absent. Core keeps all three facts.
    EXPECT_EQ(core.fact_count(), 3u);
  }
}

// Data exchange integration: the core of the universal solution is still
// a solution and is no larger.
TEST_F(CoreTest, CoreOfUniversalSolutionIsSolution) {
  SymbolTable symbols;
  auto setting = Unwrap(PdeSetting::Create(
      {{"S", 2}}, {{"T", 2}},
      // Two tgds deriving overlapping content: the chase produces
      // redundant null facts whenever both fire.
      "S(x,y) -> T(x,y).\n"
      "S(x,y) -> exists z: T(x,z).",
      "", "", &symbols));
  Instance source = ParseOrDie(setting, "S(a,b). S(c,d).", &symbols);
  DataExchangeResult de = Unwrap(
      SolveDataExchange(setting, source, setting.EmptyInstance(), &symbols));
  ASSERT_TRUE(de.has_solution);
  // The restricted chase is already frugal here; force redundancy by
  // chasing the tgds in the unlucky order via the oblivious strategy.
  std::vector<Tgd> tgds = setting.st_tgds();
  ChaseOptions oblivious;
  oblivious.strategy = ChaseStrategy::kOblivious;
  ChaseResult chased = Chase(setting.CombineInstances(
                                 source, setting.EmptyInstance()),
                             tgds, {}, &symbols, oblivious);
  ASSERT_EQ(chased.outcome, ChaseOutcome::kSuccess);
  Instance universal = setting.TargetPart(chased.instance);
  EXPECT_TRUE(universal.HasNulls());

  CoreStats stats;
  Instance core = ComputeCore(universal, &stats);
  EXPECT_GT(stats.facts_removed, 0);
  EXPECT_FALSE(core.HasNulls());  // T(x,z) folds onto T(x,y)
  EXPECT_TRUE(IsSolution(setting, source, setting.EmptyInstance(), core,
                         symbols));
  EXPECT_TRUE(IsCore(core));
}

}  // namespace
}  // namespace pdx
