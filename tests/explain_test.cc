#include "pde/explain.h"

#include "gtest/gtest.h"
#include "pde/generic_solver.h"
#include "tests/test_util.h"
#include "workload/genomics.h"

namespace pdx {
namespace {

using testing_util::MakeExample1Setting;
using testing_util::ParseOrDie;
using testing_util::Unwrap;

class ExplainTest : public ::testing::Test {
 protected:
  ExplainTest() : setting_(MakeExample1Setting(&symbols_)) {}

  SymbolTable symbols_;
  PdeSetting setting_;
};

TEST_F(ExplainTest, PinpointsTheOffendingTargetFact) {
  Instance source =
      ParseOrDie(setting_, "E(a,b). E(b,c). E(a,c).", &symbols_);
  // H(c,a) is the only unsupported fact among three.
  Instance target =
      ParseOrDie(setting_, "H(a,b). H(b,c). H(c,a).", &symbols_);
  Instance conflict = Unwrap(
      FindMinimalTargetConflict(setting_, source, target, &symbols_));
  EXPECT_EQ(conflict.ToString(symbols_), "H(c,a).");
}

TEST_F(ExplainTest, MinimalityWithMultipleCulprits) {
  Instance source = ParseOrDie(setting_, "E(a,b).", &symbols_);
  // Both H(b,a) and H(a,a) are individually unsupported: the minimal
  // conflict is a single fact (either one).
  Instance target = ParseOrDie(setting_, "H(b,a). H(a,a).", &symbols_);
  Instance conflict = Unwrap(
      FindMinimalTargetConflict(setting_, source, target, &symbols_));
  EXPECT_EQ(conflict.fact_count(), 1u);
}

TEST_F(ExplainTest, RejectsSolvablePairs) {
  Instance source = ParseOrDie(setting_, "E(a,a).", &symbols_);
  auto result = FindMinimalTargetConflict(
      setting_, source, setting_.EmptyInstance(), &symbols_);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ExplainTest, RedirectsSourceSideConflicts) {
  // (I, ∅) already unsolvable: the target-side explainer refuses and the
  // source-side one finds the 2-path without its closing edge.
  Instance source = ParseOrDie(
      setting_, "E(a,b). E(b,c). E(d,d).", &symbols_);
  Instance empty = setting_.EmptyInstance();
  auto target_side =
      FindMinimalTargetConflict(setting_, source, empty, &symbols_);
  EXPECT_FALSE(target_side.ok());

  Instance conflict = Unwrap(
      FindMinimalSourceConflict(setting_, source, empty, &symbols_));
  // Minimal: exactly the 2-path a->b->c (E(d,d) is innocent).
  EXPECT_EQ(conflict.ToString(symbols_), "E(a,b).\nE(b,c).");
}

TEST_F(ExplainTest, SourceConflictIsActuallyMinimal) {
  Instance source = ParseOrDie(
      setting_, "E(a,b). E(b,c). E(c,d). E(d,e).", &symbols_);
  Instance empty = setting_.EmptyInstance();
  Instance conflict = Unwrap(
      FindMinimalSourceConflict(setting_, source, empty, &symbols_));
  // Any single 2-path suffices; minimality means exactly 2 facts.
  EXPECT_EQ(conflict.fact_count(), 2u);
  // And it must itself be unsolvable.
  GenericSolveResult check = Unwrap(GenericExistsSolution(
      setting_, conflict, empty, &symbols_));
  EXPECT_EQ(check.outcome, SolveOutcome::kNoSolution);
}

TEST_F(ExplainTest, GenomicsUnbackedAnnotationExplained) {
  SymbolTable symbols;
  PdeSetting setting = Unwrap(MakeGenomicsSetting(&symbols));
  Rng rng(5);
  GenomicsWorkloadOptions opts;
  opts.proteins = 4;
  opts.annotations_per_protein = 1;
  opts.backed_target_annotations = 2;
  opts.unbacked_target_annotations = 1;
  GenomicsWorkload workload =
      MakeGenomicsWorkload(setting, opts, &rng, &symbols);
  Instance conflict = Unwrap(FindMinimalTargetConflict(
      setting, workload.source, workload.target, &symbols));
  // The explanation names only the unbacked local facts (1 annotation + 1
  // local protein were injected; either alone suffices).
  EXPECT_EQ(conflict.fact_count(), 1u);
  std::string rendered = conflict.ToString(symbols);
  EXPECT_NE(rendered.find("LOCAL"), std::string::npos);
}

}  // namespace
}  // namespace pdx
