#include "pde/minimize.h"

#include "gtest/gtest.h"
#include "pde/generic_solver.h"
#include "pde/solution.h"
#include "tests/test_util.h"
#include "workload/setting_gen.h"

namespace pdx {
namespace {

using testing_util::MakeExample1Setting;
using testing_util::ParseOrDie;
using testing_util::Unwrap;

TEST(MinimizeTest, StripsRedundantFacts) {
  SymbolTable symbols;
  PdeSetting setting = MakeExample1Setting(&symbols);
  Instance source = ParseOrDie(setting, "E(a,b). E(b,c). E(a,c).", &symbols);
  Instance empty = setting.EmptyInstance();
  // A valid but fat solution: all three edge-backed H facts.
  Instance fat = ParseOrDie(setting, "H(a,b). H(b,c). H(a,c).", &symbols);
  ASSERT_TRUE(IsSolution(setting, source, empty, fat, symbols));
  ASSERT_FALSE(IsMinimalSolution(setting, source, empty, fat, symbols));

  Instance minimal = Unwrap(
      MinimizeSolution(setting, source, empty, fat, symbols));
  EXPECT_EQ(minimal.ToString(symbols), "H(a,c).");
  EXPECT_TRUE(IsMinimalSolution(setting, source, empty, minimal, symbols));
}

TEST(MinimizeTest, KeepsJFacts) {
  SymbolTable symbols;
  PdeSetting setting = MakeExample1Setting(&symbols);
  Instance source = ParseOrDie(setting, "E(a,b). E(b,c). E(a,c).", &symbols);
  Instance target = ParseOrDie(setting, "H(a,b).", &symbols);
  Instance fat = ParseOrDie(setting, "H(a,b). H(b,c). H(a,c).", &symbols);
  Instance minimal = Unwrap(
      MinimizeSolution(setting, source, target, fat, symbols));
  // H(a,b) must survive (it is in J); H(b,c) is droppable.
  EXPECT_TRUE(target.IsSubsetOf(minimal));
  EXPECT_EQ(minimal.fact_count(), 2u);
}

TEST(MinimizeTest, RejectsNonSolutions) {
  SymbolTable symbols;
  PdeSetting setting = MakeExample1Setting(&symbols);
  Instance source = ParseOrDie(setting, "E(a,b). E(b,c).", &symbols);
  Instance empty = setting.EmptyInstance();
  auto result = MinimizeSolution(setting, source, empty, empty, symbols);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(MinimizeTest, AlreadyMinimalIsFixpoint) {
  SymbolTable symbols;
  PdeSetting setting = MakeExample1Setting(&symbols);
  Instance source = ParseOrDie(setting, "E(a,a).", &symbols);
  Instance empty = setting.EmptyInstance();
  Instance solution = ParseOrDie(setting, "H(a,a).", &symbols);
  Instance minimized = Unwrap(
      MinimizeSolution(setting, source, empty, solution, symbols));
  EXPECT_TRUE(minimized.FactsEqual(solution));
}

// Property sweep: minimizing the generic solver's witness on random
// C_tract settings always yields a verified, minimal solution.
class MinimizePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MinimizePropertyTest, MinimizedWitnessesAreMinimalSolutions) {
  Rng rng(GetParam());
  SymbolTable symbols;
  SettingGenOptions opts;
  opts.max_arity = 2;
  opts.st_tgd_count = 2;
  opts.ts_tgd_count = 2;
  GeneratedSetting generated =
      Unwrap(MakeRandomLavSetting(opts, &rng, &symbols));
  const PdeSetting& setting = generated.setting;
  Instance source = MakeRandomSourceInstance(setting, 6, 4, &rng, &symbols);
  Instance target = setting.EmptyInstance();
  GenericSolverOptions solver_options;
  solver_options.max_nodes = 100'000;
  auto solve = GenericExistsSolution(setting, source, target, &symbols,
                                     solver_options);
  ASSERT_TRUE(solve.ok());
  if (solve->outcome != SolveOutcome::kSolutionFound) {
    GTEST_SKIP() << "no solution on this seed";
  }
  Instance minimal = Unwrap(MinimizeSolution(setting, source, target,
                                             *solve->solution, symbols));
  EXPECT_TRUE(IsSolution(setting, source, target, minimal, symbols));
  EXPECT_TRUE(IsMinimalSolution(setting, source, target, minimal, symbols));
  EXPECT_LE(minimal.fact_count(), solve->solution->fact_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimizePropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{16}));

}  // namespace
}  // namespace pdx
