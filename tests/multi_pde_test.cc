#include "pde/multi_pde.h"

#include "gtest/gtest.h"
#include "pde/generic_solver.h"
#include "pde/solution.h"
#include "tests/test_util.h"

namespace pdx {
namespace {

using testing_util::ParseOrDie;
using testing_util::Unwrap;

// Two source peers feeding one target: a merged setting must treat the
// union of the source instances as one source (Section 2).
TEST(MultiPdeTest, MergesTwoPeers) {
  SymbolTable symbols;
  std::vector<PeerSpec> peers = {
      {{{"A", 2}}, "A(x,y) -> H(x,y).", "", ""},
      {{{"B", 2}}, "B(x,y) -> H(y,x).", "H(x,y) -> B(y,x).", ""},
  };
  PdeSetting merged =
      Unwrap(MergeMultiPde(peers, {{"H", 2}}, &symbols), "merge");
  EXPECT_EQ(merged.source_relation_count(), 2);
  EXPECT_EQ(merged.target_relation_count(), 1);
  EXPECT_EQ(merged.st_tgds().size(), 2u);
  EXPECT_EQ(merged.ts_tgds().size(), 1u);
}

TEST(MultiPdeTest, SolutionsRespectEveryPeer) {
  SymbolTable symbols;
  std::vector<PeerSpec> peers = {
      {{{"A", 2}}, "A(x,y) -> H(x,y).", "H(x,y) -> A(x,y).", ""},
      {{{"B", 2}}, "B(x,y) -> H(x,y).", "", ""},
  };
  PdeSetting merged = Unwrap(MergeMultiPde(peers, {{"H", 2}}, &symbols));

  // Peer A contributes A(a,b); peer B contributes B(c,d). Σ_ts of peer A
  // requires every H fact to be an A fact, so B's required H(c,d) is not
  // allowed: no solution.
  Instance source = ParseOrDie(merged, "A(a,b). B(c,d).", &symbols);
  GenericSolveResult result = Unwrap(GenericExistsSolution(
      merged, source, merged.EmptyInstance(), &symbols));
  EXPECT_EQ(result.outcome, SolveOutcome::kNoSolution);

  // If A also vouches for (c,d), everything is consistent.
  Instance source2 = ParseOrDie(merged, "A(a,b). A(c,d). B(c,d).", &symbols);
  GenericSolveResult result2 = Unwrap(GenericExistsSolution(
      merged, source2, merged.EmptyInstance(), &symbols));
  ASSERT_EQ(result2.outcome, SolveOutcome::kSolutionFound);
  EXPECT_TRUE(IsSolution(merged, source2, merged.EmptyInstance(),
                         *result2.solution, symbols));
}

TEST(MultiPdeTest, RejectsOverlappingSourceSchemas) {
  SymbolTable symbols;
  std::vector<PeerSpec> peers = {
      {{{"A", 2}}, "", "", ""},
      {{{"A", 2}}, "", "", ""},
  };
  EXPECT_FALSE(MergeMultiPde(peers, {{"H", 2}}, &symbols).ok());
}

TEST(MultiPdeTest, RejectsEmptyPeerList) {
  SymbolTable symbols;
  EXPECT_FALSE(MergeMultiPde({}, {{"H", 2}}, &symbols).ok());
}

TEST(MultiPdeTest, PerPeerTargetConstraintsAreUnioned) {
  SymbolTable symbols;
  std::vector<PeerSpec> peers = {
      {{{"A", 2}}, "A(x,y) -> H(x,y).", "", "H(x,y) & H(x,z) -> y = z."},
      {{{"B", 2}}, "B(x,y) -> H(x,y).", "", ""},
  };
  PdeSetting merged = Unwrap(MergeMultiPde(peers, {{"H", 2}}, &symbols));
  EXPECT_EQ(merged.target_egds().size(), 1u);
  // The egd (from peer A's Σ_t) rejects sources where A and B disagree on
  // x's successor.
  Instance source = ParseOrDie(merged, "A(a,b). B(a,c).", &symbols);
  GenericSolveResult result = Unwrap(GenericExistsSolution(
      merged, source, merged.EmptyInstance(), &symbols));
  EXPECT_EQ(result.outcome, SolveOutcome::kNoSolution);
}

}  // namespace
}  // namespace pdx
