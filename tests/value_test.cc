#include "relational/value.h"

#include <unordered_set>

#include "gtest/gtest.h"

namespace pdx {
namespace {

TEST(ValueTest, ConstantsAndNullsAreDistinctSpaces) {
  Value c = Value::Constant(5);
  Value n = Value::Null(5);
  EXPECT_TRUE(c.is_constant());
  EXPECT_FALSE(c.is_null());
  EXPECT_TRUE(n.is_null());
  EXPECT_EQ(c.id(), 5u);
  EXPECT_EQ(n.id(), 5u);
  EXPECT_NE(c, n);
  EXPECT_NE(c.packed(), n.packed());
}

TEST(ValueTest, PackedRoundTrips) {
  Value n = Value::Null(123456);
  EXPECT_EQ(Value::FromPacked(n.packed()), n);
  Value c = Value::Constant(987654);
  EXPECT_EQ(Value::FromPacked(c.packed()), c);
}

TEST(ValueTest, HashSeparatesKinds) {
  std::unordered_set<uint64_t> hashes;
  ValueHash hash;
  for (uint32_t i = 0; i < 100; ++i) {
    hashes.insert(hash(Value::Constant(i)));
    hashes.insert(hash(Value::Null(i)));
  }
  // All 200 values should hash distinctly (splitmix is injective on u64).
  EXPECT_EQ(hashes.size(), 200u);
}

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable symbols;
  Value a1 = symbols.InternConstant("alpha");
  Value a2 = symbols.InternConstant("alpha");
  Value b = symbols.InternConstant("beta");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(symbols.constant_count(), 2u);
}

TEST(SymbolTableTest, LookupDoesNotIntern) {
  SymbolTable symbols;
  bool found = true;
  symbols.LookupConstant("ghost", &found);
  EXPECT_FALSE(found);
  EXPECT_EQ(symbols.constant_count(), 0u);
  Value v = symbols.InternConstant("ghost");
  Value looked_up = symbols.LookupConstant("ghost", &found);
  EXPECT_TRUE(found);
  EXPECT_EQ(v, looked_up);
}

TEST(SymbolTableTest, FreshNullsAreDistinct) {
  SymbolTable symbols;
  Value n1 = symbols.FreshNull();
  Value n2 = symbols.FreshNull();
  EXPECT_NE(n1, n2);
  EXPECT_TRUE(n1.is_null());
  EXPECT_EQ(symbols.null_count(), 2u);
}

TEST(SymbolTableTest, ValueToString) {
  SymbolTable symbols;
  Value a = symbols.InternConstant("swissprot");
  Value n = symbols.FreshNull();
  EXPECT_EQ(symbols.ValueToString(a), "swissprot");
  EXPECT_EQ(symbols.ValueToString(n), "_N0");
}

}  // namespace
}  // namespace pdx
