// Golden-file tests for the obs exporters. The exporters are pure
// functions over hand-constructible structs, so the expected outputs can
// be pinned byte-for-byte: stable ordering, name sanitization, histogram
// re-cumulation, JSON escaping, and fixed-point timestamp rendering are
// all part of the contract (dashboards and chrome://tracing parse these).

#include <cstdio>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pdx {
namespace {

using obs::MetricKind;
using obs::MetricSnapshot;
using obs::SpanAttr;
using obs::SpanRecord;

MetricSnapshot Counter(const std::string& name, int64_t value) {
  MetricSnapshot snap;
  snap.name = name;
  snap.kind = MetricKind::kCounter;
  snap.value = value;
  return snap;
}

TEST(ExportPrometheusTest, CountersAndGauges) {
  MetricSnapshot gauge;
  gauge.name = "pdx_pool_inflight_jobs";
  gauge.kind = MetricKind::kGauge;
  gauge.value = -3;
  std::string out = obs::ExportPrometheus(
      {Counter("pdx_chase_steps_total", 42), gauge});
  EXPECT_EQ(out,
            "# TYPE pdx_chase_steps_total counter\n"
            "pdx_chase_steps_total 42\n"
            "# TYPE pdx_pool_inflight_jobs gauge\n"
            "pdx_pool_inflight_jobs -3\n");
}

TEST(ExportPrometheusTest, HistogramIsReCumulated) {
  MetricSnapshot hist;
  hist.name = "pdx_chase_batch_triggers";
  hist.kind = MetricKind::kHistogram;
  hist.hist.upper_bounds = {1, 4};
  hist.hist.bucket_counts = {2, 1, 3};  // per-bucket, overflow last
  hist.hist.sum = 55;
  hist.hist.count = 6;
  std::string out = obs::ExportPrometheus({hist});
  EXPECT_EQ(out,
            "# TYPE pdx_chase_batch_triggers histogram\n"
            "pdx_chase_batch_triggers_bucket{le=\"1\"} 2\n"
            "pdx_chase_batch_triggers_bucket{le=\"4\"} 3\n"
            "pdx_chase_batch_triggers_bucket{le=\"+Inf\"} 6\n"
            "pdx_chase_batch_triggers_sum 55\n"
            "pdx_chase_batch_triggers_count 6\n");
}

TEST(ExportPrometheusTest, SanitizesInvalidNames) {
  std::string out = obs::ExportPrometheus({
      Counter("pdx pool depth!", 1),  // spaces and punctuation
      Counter("9lives", 2),           // leading digit is invalid
      Counter("", 3),                 // empty collapses to a bare underscore
  });
  EXPECT_EQ(out,
            "# TYPE pdx_pool_depth_ counter\n"
            "pdx_pool_depth_ 1\n"
            "# TYPE _lives counter\n"
            "_lives 2\n"
            "# TYPE _ counter\n"
            "_ 3\n");
}

TEST(ExportPrometheusTest, EmptySnapshotIsEmptyOutput) {
  EXPECT_EQ(obs::ExportPrometheus({}), "");
}

SpanAttr IntAttr(const std::string& key, int64_t v) {
  SpanAttr attr;
  attr.key = key;
  attr.kind = SpanAttr::kInt;
  attr.i = v;
  return attr;
}

TEST(ExportChromeTraceTest, EmptyTrace) {
  EXPECT_EQ(obs::ExportChromeTrace({}),
            "{\n"
            "  \"displayTimeUnit\": \"ms\",\n"
            "  \"traceEvents\": []\n"
            "}\n");
}

TEST(ExportChromeTraceTest, CompleteEventsWithArgs) {
  SpanRecord root;
  root.name = "chase";
  root.id = 1;
  root.parent = 0;
  root.tid = 0;
  root.start_ns = 1000;
  root.dur_ns = 9000;
  SpanAttr ok;
  ok.key = "failed";
  ok.kind = SpanAttr::kBool;
  ok.b = false;
  SpanAttr ratio;
  ratio.key = "ratio";
  ratio.kind = SpanAttr::kDouble;
  ratio.d = 0.5;
  root.attrs = {ok, ratio};

  SpanRecord round;
  round.name = "chase.round";
  round.id = 2;
  round.parent = 1;
  round.tid = 3;
  round.start_ns = 1500;
  round.dur_ns = 2500;
  SpanAttr note;  // exercises key and value escaping
  note.key = "note \"quoted\"";
  note.kind = SpanAttr::kString;
  note.s = "line\nbreak";
  round.attrs = {IntAttr("round", 0), note};

  // Spans arrive in completion order (round before root).
  std::string out = obs::ExportChromeTrace({round, root});
  EXPECT_EQ(out,
            "{\n"
            "  \"displayTimeUnit\": \"ms\",\n"
            "  \"traceEvents\": [\n"
            "    {\n"
            "      \"name\": \"chase.round\",\n"
            "      \"cat\": \"pdx\",\n"
            "      \"ph\": \"X\",\n"
            "      \"ts\": 1.500,\n"
            "      \"dur\": 2.500,\n"
            "      \"pid\": 1,\n"
            "      \"tid\": 3,\n"
            "      \"args\": {\n"
            "        \"span_id\": 2,\n"
            "        \"parent_id\": 1,\n"
            "        \"round\": 0,\n"
            "        \"note \\\"quoted\\\"\": \"line\\nbreak\"\n"
            "      }\n"
            "    },\n"
            "    {\n"
            "      \"name\": \"chase\",\n"
            "      \"cat\": \"pdx\",\n"
            "      \"ph\": \"X\",\n"
            "      \"ts\": 1.000,\n"
            "      \"dur\": 9.000,\n"
            "      \"pid\": 1,\n"
            "      \"tid\": 0,\n"
            "      \"args\": {\n"
            "        \"span_id\": 1,\n"
            "        \"parent_id\": 0,\n"
            "        \"failed\": false,\n"
            "        \"ratio\": 0.500000\n"
            "      }\n"
            "    }\n"
            "  ]\n"
            "}\n");
}

TEST(WriteFileOrStdoutTest, WritesAndReportsErrors) {
  std::string path = ::testing::TempDir() + "/obs_export_test_out.txt";
  Status ok = obs::WriteFileOrStdout(path, "hello\n");
  ASSERT_TRUE(ok.ok()) << ok.ToString();
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buffer[16] = {};
  size_t n = std::fread(buffer, 1, sizeof(buffer), f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buffer, n), "hello\n");

  Status bad = obs::WriteFileOrStdout("/nonexistent-dir/nope/file", "x");
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace pdx
