#include "hom/matcher.h"

#include <set>

#include "gtest/gtest.h"
#include "logic/parser.h"

namespace pdx {
namespace {

class MatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.AddRelation("E", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("U", 1).ok());
    instance_ = std::make_unique<Instance>(&schema_);
    a_ = symbols_.InternConstant("a");
    b_ = symbols_.InternConstant("b");
    c_ = symbols_.InternConstant("c");
    // A directed path a -> b -> c plus a self-loop on a.
    instance_->AddFact(0, {a_, b_});
    instance_->AddFact(0, {b_, c_});
    instance_->AddFact(0, {a_, a_});
  }

  // Parses the body of a query as a conjunction to match.
  std::pair<std::vector<Atom>, int> ParseConjunction(const char* text) {
    auto query = ParseQuery(text, schema_, &symbols_);
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    return {query->body, query->var_count};
  }

  Schema schema_;
  SymbolTable symbols_;
  std::unique_ptr<Instance> instance_;
  Value a_, b_, c_;
};

TEST_F(MatcherTest, FindsAllMatchesOfSingleAtom) {
  auto [atoms, var_count] = ParseConjunction("q(x,y) :- E(x,y).");
  int count = 0;
  EnumerateMatches(atoms, var_count, *instance_, Binding::Empty(var_count),
                   [&](const Binding&) {
                     ++count;
                     return true;
                   });
  EXPECT_EQ(count, 3);
}

TEST_F(MatcherTest, JoinsShareVariables) {
  auto [atoms, var_count] = ParseConjunction("q(x,y,z) :- E(x,y) & E(y,z).");
  std::set<std::vector<uint64_t>> results;
  EnumerateMatches(atoms, var_count, *instance_, Binding::Empty(var_count),
                   [&](const Binding& b) {
                     std::vector<uint64_t> row;
                     for (const Value& v : b.values) row.push_back(v.packed());
                     results.insert(row);
                     return true;
                   });
  // Paths of length 2: a->b->c, a->a->b, a->a->a.
  EXPECT_EQ(results.size(), 3u);
}

TEST_F(MatcherTest, RepeatedVariableForcesEquality) {
  auto [atoms, var_count] = ParseConjunction("q(x) :- E(x,x).");
  int count = 0;
  EnumerateMatches(atoms, var_count, *instance_, Binding::Empty(var_count),
                   [&](const Binding& b) {
                     EXPECT_EQ(b.values[0], a_);
                     ++count;
                     return true;
                   });
  EXPECT_EQ(count, 1);
}

TEST_F(MatcherTest, ConstantsInAtomsRestrictMatches) {
  auto [atoms, var_count] = ParseConjunction("q(x) :- E('a', x).");
  std::set<uint64_t> seen;
  EnumerateMatches(atoms, var_count, *instance_, Binding::Empty(var_count),
                   [&](const Binding& b) {
                     seen.insert(b.values[0].packed());
                     return true;
                   });
  EXPECT_EQ(seen.size(), 2u);  // b and a (self-loop)
}

TEST_F(MatcherTest, PartialBindingIsRespected) {
  auto [atoms, var_count] = ParseConjunction("q(x,y) :- E(x,y).");
  Binding partial = Binding::Empty(var_count);
  partial.Bind(0, b_);
  int count = 0;
  EnumerateMatches(atoms, var_count, *instance_, partial,
                   [&](const Binding& b) {
                     EXPECT_EQ(b.values[0], b_);
                     EXPECT_EQ(b.values[1], c_);
                     ++count;
                     return true;
                   });
  EXPECT_EQ(count, 1);
}

TEST_F(MatcherTest, EarlyStopReturnsTrue) {
  auto [atoms, var_count] = ParseConjunction("q(x,y) :- E(x,y).");
  bool stopped =
      EnumerateMatches(atoms, var_count, *instance_,
                       Binding::Empty(var_count),
                       [](const Binding&) { return false; });
  EXPECT_TRUE(stopped);
}

TEST_F(MatcherTest, HasMatchBasics) {
  auto [path, path_vars] = ParseConjunction("q() :- E(x,y) & E(y,z).");
  EXPECT_TRUE(HasMatch(path, path_vars, *instance_));
  auto [triangle, tri_vars] =
      ParseConjunction("q() :- E(x,y) & E(y,z) & E(z,x).");
  // Only the self-loop forms a "triangle" x=y=z=a.
  EXPECT_TRUE(HasMatch(triangle, tri_vars, *instance_));
  auto [into_c, c_vars] = ParseConjunction("q() :- E('c', x).");
  EXPECT_FALSE(HasMatch(into_c, c_vars, *instance_));
}

TEST_F(MatcherTest, EmptyConjunctionMatchesVacuously) {
  std::vector<Atom> empty;
  int calls = 0;
  EnumerateMatches(empty, 0, *instance_, Binding::Empty(0),
                   [&](const Binding&) {
                     ++calls;
                     return true;
                   });
  EXPECT_EQ(calls, 1);
}

TEST_F(MatcherTest, NullsMatchLiterally) {
  Value n = symbols_.FreshNull();
  instance_->AddFact(0, {c_, n});
  auto [atoms, var_count] = ParseConjunction("q(x) :- E('c', x).");
  int count = 0;
  EnumerateMatches(atoms, var_count, *instance_, Binding::Empty(var_count),
                   [&](const Binding& b) {
                     EXPECT_EQ(b.values[b.values.size() - 1].packed(),
                               n.packed());
                     ++count;
                     return true;
                   });
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace pdx
