// Tests for the observability layer (src/obs/): the sharded metrics
// registry, the span tracer, and — the contract the whole PR hangs on —
// thread-count invariance of the chase metrics: running the same chase at
// num_threads 1 and 8 must produce identical aggregated totals for every
// pdx_chase_* metric, mirroring the result-invariance chase_parallel_test
// pins. Carries the `parallel` ctest label (run under TSan by
// tools/check.sh).

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "chase/chase.h"
#include "logic/parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tests/test_util.h"
#include "workload/random.h"

namespace pdx {
namespace {

using obs::HistogramData;
using obs::MetricKind;
using obs::MetricSnapshot;
using obs::MetricsRegistry;
using obs::Span;
using obs::SpanRecord;
using obs::Tracer;
using testing_util::Unwrap;

// ---------------------------------------------------------------------------
// Metrics registry

TEST(MetricsRegistryTest, CounterBasics) {
  MetricsRegistry reg;
  obs::Counter c = reg.GetCounter("requests");
  EXPECT_EQ(c.Value(), 0);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42);
  // Find-or-create: a second handle addresses the same metric.
  obs::Counter again = reg.GetCounter("requests");
  again.Inc(8);
  EXPECT_EQ(c.Value(), 50);
}

TEST(MetricsRegistryTest, GaugeBasics) {
  MetricsRegistry reg;
  obs::Gauge g = reg.GetGauge("depth");
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
  g.Add(3);
  g.Add(-5);
  EXPECT_EQ(g.Value(), 5);
}

TEST(MetricsRegistryTest, HistogramBuckets) {
  MetricsRegistry reg;
  obs::Histogram h = reg.GetHistogram("sizes", {1, 4, 16});
  h.Observe(0);   // <= 1
  h.Observe(1);   // <= 1 (bounds are inclusive)
  h.Observe(2);   // <= 4
  h.Observe(16);  // <= 16
  h.Observe(99);  // overflow
  HistogramData data = h.Value();
  ASSERT_EQ(data.upper_bounds, (std::vector<int64_t>{1, 4, 16}));
  ASSERT_EQ(data.bucket_counts, (std::vector<int64_t>{2, 1, 1, 1}));
  EXPECT_EQ(data.count, 5);
  EXPECT_EQ(data.sum, 0 + 1 + 2 + 16 + 99);
}

TEST(MetricsRegistryTest, SnapshotIsNameSorted) {
  MetricsRegistry reg;
  reg.GetCounter("zeta").Inc(1);
  reg.GetGauge("alpha").Set(2);
  reg.GetHistogram("mid", {10}).Observe(3);
  std::vector<MetricSnapshot> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "alpha");
  EXPECT_EQ(snap[1].name, "mid");
  EXPECT_EQ(snap[2].name, "zeta");
  EXPECT_EQ(snap[0].kind, MetricKind::kGauge);
  EXPECT_EQ(snap[0].value, 2);
  EXPECT_EQ(snap[2].kind, MetricKind::kCounter);
  EXPECT_EQ(snap[2].value, 1);
}

TEST(MetricsRegistryTest, ResetZeroesEverything) {
  MetricsRegistry reg;
  obs::Counter c = reg.GetCounter("c");
  obs::Gauge g = reg.GetGauge("g");
  obs::Histogram h = reg.GetHistogram("h", {5});
  c.Inc(3);
  g.Set(4);
  h.Observe(2);
  reg.Reset();
  EXPECT_EQ(c.Value(), 0);
  EXPECT_EQ(g.Value(), 0);
  EXPECT_EQ(h.Value().count, 0);
  EXPECT_EQ(h.Value().sum, 0);
  // Registrations survive a reset.
  EXPECT_EQ(reg.Snapshot().size(), 3u);
}

// Increments from many threads must aggregate exactly, both while the
// threads are alive and after they exit (thread exit folds the per-thread
// shard into the registry's retired totals).
TEST(MetricsRegistryTest, ConcurrentIncrementsAggregateExactly) {
  MetricsRegistry reg;
  obs::Counter c = reg.GetCounter("contended");
  obs::Histogram h = reg.GetHistogram("contended_sizes", {8});
  constexpr int kThreads = 8;
  constexpr int kIncs = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kIncs; ++i) {
        c.Inc();
        h.Observe(i % 16);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // All writer threads have exited: the totals live in retired[] now.
  EXPECT_EQ(c.Value(), int64_t{kThreads} * kIncs);
  HistogramData data = h.Value();
  EXPECT_EQ(data.count, int64_t{kThreads} * kIncs);
  // i % 16: half the observations are <= 8 (0..8), half overflow (9..15).
  ASSERT_EQ(data.bucket_counts.size(), 2u);
  EXPECT_EQ(data.bucket_counts[0], int64_t{kThreads} * kIncs * 9 / 16);
  EXPECT_EQ(data.bucket_counts[1], int64_t{kThreads} * kIncs * 7 / 16);
}

// Two registries do not share shards or names.
TEST(MetricsRegistryTest, RegistriesAreIndependent) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("same").Inc(5);
  b.GetCounter("same").Inc(7);
  EXPECT_EQ(a.GetCounter("same").Value(), 5);
  EXPECT_EQ(b.GetCounter("same").Value(), 7);
}

// ---------------------------------------------------------------------------
// Tracer

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  {
    Span span(tracer, "ignored");
    EXPECT_EQ(span.id(), 0u);
    span.AttrInt("k", 1);
  }
  EXPECT_TRUE(tracer.Drain().empty());
}

TEST(TracerTest, NestingLinksParentIds) {
  Tracer tracer;
  tracer.Enable();
  {
    Span outer(tracer, "outer");
    outer.AttrStr("phase", "demo");
    {
      Span inner(tracer, "inner");
      inner.AttrInt("round", 3).AttrBool("last", true);
      EXPECT_NE(inner.id(), outer.id());
    }
  }
  std::vector<SpanRecord> spans = tracer.Drain();
  ASSERT_EQ(spans.size(), 2u);  // completion order: inner first
  const SpanRecord& inner = spans[0];
  const SpanRecord& outer = spans[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(inner.parent, outer.id);
  ASSERT_EQ(inner.attrs.size(), 2u);
  EXPECT_EQ(inner.attrs[0].key, "round");
  EXPECT_EQ(inner.attrs[0].i, 3);
  EXPECT_EQ(inner.attrs[1].key, "last");
  EXPECT_TRUE(inner.attrs[1].b);
  ASSERT_EQ(outer.attrs.size(), 1u);
  EXPECT_EQ(outer.attrs[0].s, "demo");
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_GE(inner.dur_ns, 0);
  EXPECT_GE(outer.dur_ns, inner.dur_ns);
}

// The explicit-parent constructor carries the linkage across threads,
// where the thread_local nesting stack cannot.
TEST(TracerTest, ExplicitParentCrossesThreads) {
  Tracer tracer;
  tracer.Enable();
  uint64_t parent_id = 0;
  {
    Span parent(tracer, "batch");
    parent_id = parent.id();
    std::thread worker([&tracer, parent_id] {
      Span child(tracer, "task", parent_id);
      child.AttrInt("partition", 0);
    });
    worker.join();
  }
  std::vector<SpanRecord> spans = tracer.Drain();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "task");
  EXPECT_EQ(spans[0].parent, parent_id);
  EXPECT_NE(spans[0].tid, spans[1].tid);
}

TEST(TracerTest, RingOverwritesOldestAndCountsDropped) {
  Tracer tracer;
  tracer.Enable(/*capacity=*/4);
  for (int i = 0; i < 6; ++i) {
    Span span(tracer, "s");
    span.AttrInt("i", i);
  }
  EXPECT_EQ(tracer.dropped(), 2u);
  std::vector<SpanRecord> spans = tracer.Drain();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first: spans 0 and 1 were overwritten.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[i].attrs[0].i, i + 2);
  }
  // Drain cleared the ring; recording continues while enabled.
  { Span span(tracer, "after"); }
  EXPECT_EQ(tracer.Drain().size(), 1u);
}

TEST(TracerTest, DisableStopsRecording) {
  Tracer tracer;
  tracer.Enable();
  { Span span(tracer, "kept"); }
  tracer.Disable();
  { Span span(tracer, "ignored"); }
  std::vector<SpanRecord> spans = tracer.Drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "kept");
}

// ---------------------------------------------------------------------------
// Thread-count invariance of the chase metrics

// The chase metrics that must not depend on num_threads. Pool metrics
// (pdx_pool_*) are deliberately absent: steal counts are scheduling noise.
// There is no egd-pass metric for the same reason — the batched and
// rescan egd disciplines reach the same closure in different pass
// structures; only the merge count (one per union) is invariant.
constexpr const char* kInvariantCounters[] = {
    "pdx_chase_runs_total",        "pdx_chase_steps_total",
    "pdx_chase_nulls_created_total", "pdx_chase_rounds_total",
    "pdx_chase_tgd_matches_total", "pdx_chase_egd_merges_total",
    "pdx_chase_compactions_total",
};

struct ObsInvarianceTest : ::testing::Test {
  Schema schema;
  SymbolTable symbols;
  std::vector<Tgd> pipeline_tgds;
  std::vector<Tgd> egd_heavy_tgds;
  std::vector<Egd> egd_heavy_egds;

  ObsInvarianceTest() {
    PDX_CHECK(schema.AddRelation("E", 2).ok());
    PDX_CHECK(schema.AddRelation("H", 2).ok());
    PDX_CHECK(schema.AddRelation("F", 2).ok());
    pipeline_tgds = Unwrap(ParseDependencies("E(x,z) & E(z,y) -> H(x,y)."
                                             "H(x,y) -> exists w: F(y,w).",
                                             schema, &symbols),
                           "pipeline")
                        .tgds;
    auto heavy = Unwrap(
        ParseDependencies("E(x,y) -> exists z: H(x,z) & F(y,z).", schema,
                          &symbols),
        "heavy tgds");
    egd_heavy_tgds = heavy.tgds;
    egd_heavy_egds =
        Unwrap(ParseDependencies(
                   "H(x,y) & H(x,z) -> y = z. F(x,y) & F(x,z) -> y = z.",
                   schema, &symbols),
               "heavy egds")
            .egds;
  }

  Instance RandomEdges(int n, int edges_per_node, uint64_t seed) {
    Rng rng(seed);
    Instance instance(&schema);
    for (int i = 0; i < edges_per_node * n; ++i) {
      Value u =
          symbols.InternConstant("n" + std::to_string(rng.UniformInt(n)));
      Value v =
          symbols.InternConstant("n" + std::to_string(rng.UniformInt(n)));
      instance.AddFact(0, {u, v});
    }
    return instance;
  }

  static std::map<std::string, MetricSnapshot> SnapMap() {
    std::map<std::string, MetricSnapshot> out;
    for (MetricSnapshot& snap : MetricsRegistry::Global().Snapshot()) {
      out[snap.name] = std::move(snap);
    }
    return out;
  }

  static int64_t CounterDelta(const std::map<std::string, MetricSnapshot>& a,
                              const std::map<std::string, MetricSnapshot>& b,
                              const std::string& name) {
    auto before = a.find(name);
    auto after = b.find(name);
    int64_t v0 = before == a.end() ? 0 : before->second.value;
    int64_t v1 = after == b.end() ? 0 : after->second.value;
    return v1 - v0;
  }

  static std::vector<int64_t> HistDelta(
      const std::map<std::string, MetricSnapshot>& a,
      const std::map<std::string, MetricSnapshot>& b,
      const std::string& name) {
    auto before = a.find(name);
    auto after = b.find(name);
    if (after == b.end()) return {};
    std::vector<int64_t> delta = after->second.hist.bucket_counts;
    if (before != a.end()) {
      for (size_t i = 0; i < delta.size() &&
                         i < before->second.hist.bucket_counts.size();
           ++i) {
        delta[i] -= before->second.hist.bucket_counts[i];
      }
    }
    return delta;
  }

  // Runs the workload once at `threads` and returns every invariant
  // counter's registry delta (plus the batch-size histogram's).
  struct MetricDeltas {
    std::map<std::string, int64_t> counters;
    std::vector<int64_t> batch_buckets;
  };

  MetricDeltas RunAndMeasure(const Instance& start,
                             const std::vector<Tgd>& tgds,
                             const std::vector<Egd>& egds, int threads) {
    ChaseOptions options;
    options.strategy = ChaseStrategy::kRestricted;
    options.num_threads = threads;
    std::map<std::string, MetricSnapshot> before = SnapMap();
    ChaseResult result = Chase(start, tgds, egds, &symbols, options);
    PDX_CHECK(result.outcome == ChaseOutcome::kSuccess);
    std::map<std::string, MetricSnapshot> after = SnapMap();
    MetricDeltas deltas;
    for (const char* name : kInvariantCounters) {
      deltas.counters[name] = CounterDelta(before, after, name);
    }
    deltas.batch_buckets =
        HistDelta(before, after, "pdx_chase_batch_triggers");
    return deltas;
  }

  void ExpectMetricInvariance(const Instance& start,
                              const std::vector<Tgd>& tgds,
                              const std::vector<Egd>& egds) {
    MetricDeltas ref = RunAndMeasure(start, tgds, egds, /*threads=*/1);
    // The run must actually exercise the metrics for the comparison to
    // mean anything.
    EXPECT_EQ(ref.counters["pdx_chase_runs_total"], 1);
    EXPECT_GT(ref.counters["pdx_chase_steps_total"], 0);
    EXPECT_GT(ref.counters["pdx_chase_rounds_total"], 0);
    EXPECT_GT(ref.counters["pdx_chase_tgd_matches_total"], 0);
    for (int threads : {2, 8}) {
      MetricDeltas got = RunAndMeasure(start, tgds, egds, threads);
      for (const char* name : kInvariantCounters) {
        EXPECT_EQ(got.counters[name], ref.counters[name])
            << name << " differs at " << threads << " threads";
      }
      EXPECT_EQ(got.batch_buckets, ref.batch_buckets)
          << "pdx_chase_batch_triggers differs at " << threads << " threads";
    }
  }
};

TEST_F(ObsInvarianceTest, PipelineMetricsAreThreadInvariant) {
  Instance start = RandomEdges(48, 2, 17);
  ExpectMetricInvariance(start, pipeline_tgds, {});
}

TEST_F(ObsInvarianceTest, EgdHeavyMetricsAreThreadInvariant) {
  Instance start = RandomEdges(32, 3, 29);
  // The merge cascade drives pdx_chase_egd_merges_total; assert it moved.
  MetricDeltas ref =
      RunAndMeasure(start, egd_heavy_tgds, egd_heavy_egds, /*threads=*/1);
  EXPECT_GT(ref.counters["pdx_chase_egd_merges_total"], 0);
  EXPECT_GT(ref.counters["pdx_chase_nulls_created_total"], 0);
  ExpectMetricInvariance(start, egd_heavy_tgds, egd_heavy_egds);
}

}  // namespace
}  // namespace pdx
