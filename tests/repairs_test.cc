#include "pde/repairs.h"

#include "gtest/gtest.h"
#include "logic/parser.h"
#include "pde/solution.h"
#include "tests/test_util.h"
#include "workload/genomics.h"

namespace pdx {
namespace {

using testing_util::MakeExample1Setting;
using testing_util::ParseOrDie;
using testing_util::Unwrap;

class RepairsTest : public ::testing::Test {
 protected:
  RepairsTest() : setting_(MakeExample1Setting(&symbols_)) {}

  SymbolTable symbols_;
  PdeSetting setting_;
};

TEST_F(RepairsTest, SolvablePairHasItselfAsOnlyRepair) {
  Instance source =
      ParseOrDie(setting_, "E(a,b). E(b,c). E(a,c).", &symbols_);
  Instance target = ParseOrDie(setting_, "H(a,b).", &symbols_);
  std::vector<Instance> repairs = Unwrap(
      ComputeSubsetRepairs(setting_, source, target, &symbols_));
  ASSERT_EQ(repairs.size(), 1u);
  EXPECT_TRUE(repairs[0].FactsEqual(target));
}

TEST_F(RepairsTest, DropsExactlyTheOffendingFacts) {
  Instance source =
      ParseOrDie(setting_, "E(a,b). E(b,c). E(a,c).", &symbols_);
  // H(c,a) is unsupported ((c,a) is not an edge); the rest is fine.
  Instance target = ParseOrDie(setting_, "H(a,b). H(c,a).", &symbols_);
  std::vector<Instance> repairs = Unwrap(
      ComputeSubsetRepairs(setting_, source, target, &symbols_));
  ASSERT_EQ(repairs.size(), 1u);
  EXPECT_EQ(repairs[0].ToString(symbols_), "H(a,b).");
}

TEST_F(RepairsTest, MultipleIncomparableRepairs) {
  SymbolTable symbols;
  // A key-like situation without target constraints: Σ_ts allows each H
  // fact only if it is an E edge, and Σ_st forces nothing. Two H facts
  // clash with E only individually — craft E so each fact is fine alone
  // but Σ_t-free PDE cannot produce multiple repairs that way, so use a
  // setting with a target egd instead: H's first column is a key.
  auto setting = Unwrap(PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}},
      "", "H(x,y) -> E(x,y).",
      "H(x,y) & H(x,z) -> y = z.", &symbols));
  Instance source = ParseOrDie(setting, "E(a,b). E(a,c).", &symbols);
  // Both facts are edge-backed, but the key egd forbids keeping both.
  Instance target = ParseOrDie(setting, "H(a,b). H(a,c).", &symbols);
  std::vector<Instance> repairs = Unwrap(
      ComputeSubsetRepairs(setting, source, target, &symbols));
  ASSERT_EQ(repairs.size(), 2u);
  // The two singleton subsets, in either order.
  EXPECT_NE(repairs[0].ToString(symbols), repairs[1].ToString(symbols));
  for (const Instance& repair : repairs) {
    EXPECT_EQ(repair.fact_count(), 1u);
  }
}

TEST_F(RepairsTest, EmptyRepairWhenNothingIsKeepable) {
  Instance source = ParseOrDie(setting_, "E(a,b).", &symbols_);
  // Neither H fact is edge-backed... H(a,b) is edge-backed; use ones that
  // are not.
  Instance target = ParseOrDie(setting_, "H(b,a). H(a,a).", &symbols_);
  std::vector<Instance> repairs = Unwrap(
      ComputeSubsetRepairs(setting_, source, target, &symbols_));
  ASSERT_EQ(repairs.size(), 1u);
  EXPECT_EQ(repairs[0].fact_count(), 0u);
}

TEST_F(RepairsTest, RepairCertainAnswersIntersectAcrossRepairs) {
  SymbolTable symbols;
  auto setting = Unwrap(PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}},
      "", "H(x,y) -> E(x,y).",
      "H(x,y) & H(x,z) -> y = z.", &symbols));
  Instance source =
      ParseOrDie(setting, "E(a,b). E(a,c). E(d,d).", &symbols);
  Instance target =
      ParseOrDie(setting, "H(a,b). H(a,c). H(d,d).", &symbols);
  UnionQuery q = Unwrap(
      ParseUnionQuery("q(x,y) :- H(x,y).", setting.schema(), &symbols));
  RepairCertainAnswersResult result = Unwrap(ComputeRepairCertainAnswers(
      setting, source, target, q, &symbols));
  EXPECT_EQ(result.repair_count, 2);
  // H(d,d) survives in every repair; H(a,b)/H(a,c) only in one each.
  Value d = symbols.InternConstant("d");
  ASSERT_EQ(result.answers.size(), 1u);
  EXPECT_EQ(result.answers[0], (Tuple{d, d}));
}

TEST_F(RepairsTest, BooleanRepairCertainAnswers) {
  Instance source = ParseOrDie(setting_, "E(a,b).", &symbols_);
  Instance target = ParseOrDie(setting_, "H(a,b). H(b,a).", &symbols_);
  UnionQuery q_kept = Unwrap(ParseUnionQuery(
      "q() :- H('a','b').", setting_.schema(), &symbols_));
  RepairCertainAnswersResult kept = Unwrap(ComputeRepairCertainAnswers(
      setting_, source, target, q_kept, &symbols_));
  EXPECT_EQ(kept.repair_count, 1);
  EXPECT_TRUE(kept.boolean_value);  // H(a,b) survives the repair

  UnionQuery q_dropped = Unwrap(ParseUnionQuery(
      "q() :- H('b','a').", setting_.schema(), &symbols_));
  RepairCertainAnswersResult dropped = Unwrap(ComputeRepairCertainAnswers(
      setting_, source, target, q_dropped, &symbols_));
  EXPECT_FALSE(dropped.boolean_value);
}

TEST_F(RepairsTest, BudgetIsEnforced) {
  Instance source = ParseOrDie(setting_, "E(a,b).", &symbols_);
  Instance target = ParseOrDie(
      setting_, "H(b,a). H(a,a). H(b,b). H(c,c). H(c,a).", &symbols_);
  RepairOptions options;
  options.max_subsets_examined = 3;
  auto result =
      ComputeSubsetRepairs(setting_, source, target, &symbols_, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(RepairsTest, RepairsOfGenomicsScenario) {
  SymbolTable symbols;
  PdeSetting setting = Unwrap(MakeGenomicsSetting(&symbols));
  Rng rng(7);
  GenomicsWorkloadOptions opts;
  opts.proteins = 3;
  opts.annotations_per_protein = 1;
  opts.backed_target_annotations = 1;
  opts.unbacked_target_annotations = 1;
  GenomicsWorkload workload =
      MakeGenomicsWorkload(setting, opts, &rng, &symbols);
  std::vector<Instance> repairs = Unwrap(
      ComputeSubsetRepairs(setting, workload.source, workload.target,
                           &symbols));
  ASSERT_EQ(repairs.size(), 1u);
  // The repair keeps everything except the unbacked local facts.
  EXPECT_LT(repairs[0].fact_count(), workload.target.fact_count());
  for (const Instance& repair : repairs) {
    auto solve = GenericExistsSolution(setting, workload.source, repair,
                                       &symbols);
    ASSERT_TRUE(solve.ok());
    EXPECT_EQ(solve->outcome, SolveOutcome::kSolutionFound);
  }
}

}  // namespace
}  // namespace pdx
