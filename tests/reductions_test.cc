// End-to-end validation of the hardness reductions: solution existence
// must coincide exactly with the brute-force combinatorial oracle on a
// battery of small graphs.

#include "workload/reductions.h"

#include "gtest/gtest.h"
#include "logic/dependency_graph.h"
#include "pde/ctract_solver.h"
#include "pde/generic_solver.h"
#include "pde/solution.h"
#include "tests/test_util.h"
#include "workload/graph_gen.h"

namespace pdx {
namespace {

using testing_util::Unwrap;

struct GraphCase {
  const char* name;
  Graph graph;
  int k;
};

std::vector<GraphCase> CliqueCases() {
  Rng rng(7);
  std::vector<GraphCase> cases;
  cases.push_back({"Triangle_k3", CompleteGraph(3), 3});
  cases.push_back({"Path4_k3", PathGraph(4), 3});
  cases.push_back({"K4_k4", CompleteGraph(4), 4});
  cases.push_back({"K4_k3", CompleteGraph(4), 3});
  cases.push_back({"Path5_k2", PathGraph(5), 2});
  cases.push_back({"Empty3_k2", Graph{3, {}}, 2});
  cases.push_back({"ER_n6_p04_k3", ErdosRenyi(6, 0.4, &rng), 3});
  cases.push_back({"ER_n6_p07_k3", ErdosRenyi(6, 0.7, &rng), 3});
  cases.push_back({"Planted_n7_k3",
                   PlantClique(ErdosRenyi(7, 0.2, &rng), 3, &rng), 3});
  return cases;
}

class CliqueReductionTest
    : public ::testing::TestWithParam<GraphCase> {};

// Theorem 3: G has a k-clique iff a solution exists for (I(G,k), ∅).
// Validated with both solvers (the CLIQUE setting satisfies condition 1,
// so the Theorem 5 homomorphism algorithm is correct on it).
TEST_P(CliqueReductionTest, SolutionExistenceEqualsCliqueExistence) {
  const GraphCase& test_case = GetParam();
  bool expected = HasClique(test_case.graph, test_case.k);

  SymbolTable symbols;
  PdeSetting setting = Unwrap(MakeCliqueSetting(&symbols));
  Instance source = MakeCliqueSourceInstance(setting, test_case.graph,
                                             test_case.k, &symbols);

  CtractSolveResult hom_result = Unwrap(CtractExistsSolution(
      setting, source, setting.EmptyInstance(), &symbols));
  EXPECT_EQ(hom_result.has_solution, expected)
      << "homomorphism solver disagrees with the clique oracle";
  if (hom_result.has_solution) {
    EXPECT_TRUE(IsSolution(setting, source, setting.EmptyInstance(),
                           *hom_result.solution, symbols));
  }

  GenericSolverOptions options;
  options.max_nodes = 2'000'000;
  GenericSolveResult search_result = Unwrap(GenericExistsSolution(
      setting, source, setting.EmptyInstance(), &symbols, options));
  ASSERT_NE(search_result.outcome, SolveOutcome::kBudgetExhausted);
  EXPECT_EQ(search_result.outcome == SolveOutcome::kSolutionFound, expected)
      << "generic solver disagrees with the clique oracle";
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, CliqueReductionTest, ::testing::ValuesIn(CliqueCases()),
    [](const ::testing::TestParamInfo<GraphCase>& info) {
      return std::string(info.param.name);
    });

class EgdBoundaryTest : public ::testing::TestWithParam<GraphCase> {};

// Section 4, variant (a): one target egd makes SOL NP-hard although
// Σ_st/Σ_ts satisfy conditions 1 and 2.1.
TEST_P(EgdBoundaryTest, SolutionExistenceEqualsCliqueExistence) {
  const GraphCase& test_case = GetParam();
  bool expected = HasClique(test_case.graph, test_case.k);
  SymbolTable symbols;
  PdeSetting setting = Unwrap(MakeEgdBoundarySetting(&symbols));
  Instance source = MakeEgdBoundarySourceInstance(
      setting, test_case.graph, test_case.k, &symbols);
  GenericSolverOptions options;
  options.max_nodes = 2'000'000;
  GenericSolveResult result = Unwrap(GenericExistsSolution(
      setting, source, setting.EmptyInstance(), &symbols, options));
  ASSERT_NE(result.outcome, SolveOutcome::kBudgetExhausted);
  EXPECT_EQ(result.outcome == SolveOutcome::kSolutionFound, expected);
  if (result.outcome == SolveOutcome::kSolutionFound) {
    EXPECT_TRUE(IsSolution(setting, source, setting.EmptyInstance(),
                           *result.solution, symbols));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, EgdBoundaryTest, ::testing::ValuesIn(CliqueCases()),
    [](const ::testing::TestParamInfo<GraphCase>& info) {
      return std::string(info.param.name);
    });

class TargetTgdBoundaryTest : public ::testing::TestWithParam<GraphCase> {};

// Section 4, variant (b): one full target tgd (via the target copy Sp).
TEST_P(TargetTgdBoundaryTest, SolutionExistenceEqualsCliqueExistence) {
  const GraphCase& test_case = GetParam();
  bool expected = HasClique(test_case.graph, test_case.k);
  SymbolTable symbols;
  PdeSetting setting = Unwrap(MakeTargetTgdBoundarySetting(&symbols));
  Instance source = MakeTargetTgdBoundarySourceInstance(
      setting, test_case.graph, test_case.k, &symbols);
  GenericSolverOptions options;
  options.max_nodes = 2'000'000;
  GenericSolveResult result = Unwrap(GenericExistsSolution(
      setting, source, setting.EmptyInstance(), &symbols, options));
  ASSERT_NE(result.outcome, SolveOutcome::kBudgetExhausted);
  EXPECT_EQ(result.outcome == SolveOutcome::kSolutionFound, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, TargetTgdBoundaryTest, ::testing::ValuesIn(CliqueCases()),
    [](const ::testing::TestParamInfo<GraphCase>& info) {
      return std::string(info.param.name);
    });

struct ColorCase {
  const char* name;
  Graph graph;
};

std::vector<ColorCase> ColorCases() {
  Rng rng(11);
  return {
      {"Triangle", CompleteGraph(3)},
      {"K4", CompleteGraph(4)},
      {"Path5", PathGraph(5)},
      {"ER_n5_p05", ErdosRenyi(5, 0.5, &rng)},
      {"ER_n6_p06", ErdosRenyi(6, 0.6, &rng)},
  };
}

class ThreeColBoundaryTest : public ::testing::TestWithParam<ColorCase> {};

// Section 4, variant (c): the disjunctive ts-tgd setting solves iff the
// graph is 3-colorable.
TEST_P(ThreeColBoundaryTest, SolutionExistenceEquals3Colorability) {
  const ColorCase& test_case = GetParam();
  bool expected = Is3Colorable(test_case.graph);
  SymbolTable symbols;
  PdeSetting setting = Unwrap(MakeThreeColSetting(&symbols));
  Instance source =
      MakeThreeColSourceInstance(setting, test_case.graph, &symbols);
  GenericSolverOptions options;
  options.max_nodes = 2'000'000;
  GenericSolveResult result = Unwrap(GenericExistsSolution(
      setting, source, setting.EmptyInstance(), &symbols, options));
  ASSERT_NE(result.outcome, SolveOutcome::kBudgetExhausted);
  EXPECT_EQ(result.outcome == SolveOutcome::kSolutionFound, expected);
  if (result.outcome == SolveOutcome::kSolutionFound) {
    EXPECT_TRUE(IsSolution(setting, source, setting.EmptyInstance(),
                           *result.solution, symbols));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, ThreeColBoundaryTest, ::testing::ValuesIn(ColorCases()),
    [](const ::testing::TestParamInfo<ColorCase>& info) {
      return std::string(info.param.name);
    });

// The dependency-graph remark after Theorem 3: the CLIQUE setting's
// relation-level graph is acyclic, yet SOL is NP-hard.
TEST(CliqueSettingStructureTest, RelationGraphIsAcyclic) {
  SymbolTable symbols;
  PdeSetting setting = Unwrap(MakeCliqueSetting(&symbols));
  std::vector<Tgd> all = setting.st_tgds();
  all.insert(all.end(), setting.ts_tgds().begin(), setting.ts_tgds().end());
  EXPECT_TRUE(IsRelationGraphAcyclic(all, setting.schema()));
}

}  // namespace
}  // namespace pdx
