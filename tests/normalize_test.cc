#include "logic/normalize.h"

#include "gtest/gtest.h"
#include "chase/chase.h"
#include "logic/parser.h"

namespace pdx {
namespace {

class NormalizeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.AddRelation("E", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("H", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("F", 2).ok());
  }

  std::vector<Tgd> Parse(const char* text) {
    auto deps = ParseDependencies(text, schema_, &symbols_);
    EXPECT_TRUE(deps.ok()) << deps.status().ToString();
    return std::move(deps).value().tgds;
  }

  Schema schema_;
  SymbolTable symbols_;
};

TEST_F(NormalizeTest, SplitsFullHeads) {
  std::vector<Tgd> split =
      SplitFullTgdHeads(Parse("E(x,y) -> H(x,y) & F(y,x)."));
  ASSERT_EQ(split.size(), 2u);
  EXPECT_TRUE(split[0].IsGav());
  EXPECT_TRUE(split[1].IsGav());
  EXPECT_EQ(split[0].body, split[1].body);
}

TEST_F(NormalizeTest, DoesNotSplitExistentialHeads) {
  // ∃z couples the two head atoms: splitting would weaken the dependency.
  std::vector<Tgd> kept =
      SplitFullTgdHeads(Parse("E(x,y) -> exists z: H(x,z) & F(z,y)."));
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].head.size(), 2u);
}

TEST_F(NormalizeTest, SplitPreservesChaseResult) {
  std::vector<Tgd> original =
      Parse("E(x,y) -> H(x,y) & F(y,x). E(x,y) & E(y,z) -> H(x,z).");
  std::vector<Tgd> split = SplitFullTgdHeads(original);
  EXPECT_EQ(split.size(), 3u);
  Instance start(&schema_);
  Value a = symbols_.InternConstant("a");
  Value b = symbols_.InternConstant("b");
  start.AddFact(0, {a, b});
  start.AddFact(0, {b, a});
  ChaseResult with_original = Chase(start, original, &symbols_);
  ChaseResult with_split = Chase(start, split, &symbols_);
  ASSERT_EQ(with_original.outcome, ChaseOutcome::kSuccess);
  ASSERT_EQ(with_split.outcome, ChaseOutcome::kSuccess);
  EXPECT_TRUE(with_original.instance.FactsEqual(with_split.instance));
}

TEST_F(NormalizeTest, DeduplicatesUpToRenaming) {
  std::vector<Tgd> deduped = DeduplicateTgds(
      Parse("E(x,y) -> H(x,y). E(a,b) -> H(a,b). E(x,y) -> H(y,x)."));
  // First two are the same tgd with different variable names.
  EXPECT_EQ(deduped.size(), 2u);
}

TEST_F(NormalizeTest, DedupDistinguishesExistentiality) {
  std::vector<Tgd> deduped = DeduplicateTgds(
      Parse("E(x,y) -> H(x,y). E(x,y) -> exists w: H(x,w)."));
  EXPECT_EQ(deduped.size(), 2u);
}

TEST_F(NormalizeTest, PrunesImpliedTgds) {
  std::vector<Tgd> tgds = Parse(
      "E(x,y) -> H(x,y). H(x,y) -> F(x,y). E(x,y) -> F(x,y).");
  auto pruned = PruneImpliedTgds(tgds, schema_, &symbols_);
  ASSERT_TRUE(pruned.ok());
  // The third is implied by composing the first two.
  ASSERT_EQ(pruned->size(), 2u);
  for (const Tgd& tgd : *pruned) {
    EXPECT_EQ(tgd.head[0].relation,
              tgd.body[0].relation == 0 ? 1 : 2);
  }
}

TEST_F(NormalizeTest, PruneKeepsIrredundantSets) {
  std::vector<Tgd> tgds =
      Parse("E(x,y) -> H(x,y). H(x,y) -> E(x,y).");
  auto pruned = PruneImpliedTgds(tgds, schema_, &symbols_);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned->size(), 2u);
}

TEST_F(NormalizeTest, PruneRequiresWeakAcyclicity) {
  // Pruning the second tgd chases with the first, which is not weakly
  // acyclic on its own: the implication engine must refuse.
  std::vector<Tgd> tgds =
      Parse("H(x,y) -> exists z: H(y,z). E(x,y) -> H(x,y).");
  auto pruned = PruneImpliedTgds(tgds, schema_, &symbols_);
  EXPECT_FALSE(pruned.ok());
  EXPECT_EQ(pruned.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace pdx
