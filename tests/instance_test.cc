#include "relational/instance.h"

#include <algorithm>

#include "gtest/gtest.h"

namespace pdx {
namespace {

class InstanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.AddRelation("E", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("U", 1).ok());
    e_ = schema_.FindRelation("E").value();
    u_ = schema_.FindRelation("U").value();
    a_ = symbols_.InternConstant("a");
    b_ = symbols_.InternConstant("b");
    c_ = symbols_.InternConstant("c");
  }

  Schema schema_;
  SymbolTable symbols_;
  RelationId e_ = 0;
  RelationId u_ = 0;
  Value a_, b_, c_;
};

TEST_F(InstanceTest, AddFactDeduplicates) {
  Instance instance(&schema_);
  EXPECT_TRUE(instance.AddFact(e_, {a_, b_}));
  EXPECT_FALSE(instance.AddFact(e_, {a_, b_}));
  EXPECT_TRUE(instance.AddFact(e_, {b_, a_}));
  EXPECT_EQ(instance.fact_count(), 2u);
  EXPECT_TRUE(instance.Contains(e_, {a_, b_}));
  EXPECT_FALSE(instance.Contains(e_, {a_, c_}));
}

TEST_F(InstanceTest, PositionalIndexFindsTuples) {
  Instance instance(&schema_);
  instance.AddFact(e_, {a_, b_});
  instance.AddFact(e_, {a_, c_});
  instance.AddFact(e_, {b_, c_});
  EXPECT_EQ(instance.TuplesWithValueAt(e_, 0, a_).size(), 2u);
  EXPECT_EQ(instance.TuplesWithValueAt(e_, 1, c_).size(), 2u);
  EXPECT_TRUE(instance.TuplesWithValueAt(e_, 0, c_).empty());
}

TEST_F(InstanceTest, ActiveDomainAndNulls) {
  Instance instance(&schema_);
  Value n = symbols_.FreshNull();
  instance.AddFact(e_, {a_, n});
  instance.AddFact(u_, {b_});
  std::vector<Value> domain = instance.ActiveDomain();
  EXPECT_EQ(domain.size(), 3u);
  EXPECT_TRUE(instance.HasNulls());
  ASSERT_EQ(instance.Nulls().size(), 1u);
  EXPECT_EQ(instance.Nulls()[0], n);
}

TEST_F(InstanceTest, SubsetAndEquality) {
  Instance small(&schema_);
  small.AddFact(e_, {a_, b_});
  Instance big = small;
  big.AddFact(e_, {b_, c_});
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_FALSE(small.FactsEqual(big));
  Instance copy = big;
  EXPECT_TRUE(copy.FactsEqual(big));
}

TEST_F(InstanceTest, UnionWith) {
  Instance left(&schema_);
  left.AddFact(e_, {a_, b_});
  Instance right(&schema_);
  right.AddFact(e_, {a_, b_});
  right.AddFact(u_, {c_});
  left.UnionWith(right);
  EXPECT_EQ(left.fact_count(), 2u);
  EXPECT_TRUE(left.Contains(u_, {c_}));
}

TEST_F(InstanceTest, SubstituteMergesAndRebuildsIndex) {
  Instance instance(&schema_);
  Value n = symbols_.FreshNull();
  instance.AddFact(e_, {a_, n});
  instance.AddFact(e_, {a_, b_});
  instance.Substitute(n, b_);
  // The two facts collapse into one.
  EXPECT_EQ(instance.fact_count(), 1u);
  EXPECT_TRUE(instance.Contains(e_, {a_, b_}));
  EXPECT_EQ(instance.TuplesWithValueAt(e_, 1, b_).size(), 1u);
  EXPECT_TRUE(instance.TuplesWithValueAt(e_, 1, n).empty());
}

TEST_F(InstanceTest, CanonicalFingerprintIgnoresNullIdentity) {
  Instance x(&schema_);
  Instance y(&schema_);
  Value n1 = symbols_.FreshNull();
  Value n2 = symbols_.FreshNull();
  x.AddFact(e_, {a_, n1});
  y.AddFact(e_, {a_, n2});
  EXPECT_EQ(x.CanonicalFingerprint(), y.CanonicalFingerprint());
}

TEST_F(InstanceTest, CanonicalFingerprintIgnoresInsertionOrder) {
  Instance x(&schema_);
  Instance y(&schema_);
  x.AddFact(e_, {a_, b_});
  x.AddFact(e_, {b_, c_});
  y.AddFact(e_, {b_, c_});
  y.AddFact(e_, {a_, b_});
  EXPECT_EQ(x.CanonicalFingerprint(), y.CanonicalFingerprint());
}

TEST_F(InstanceTest, CanonicalFingerprintDistinguishesStructure) {
  Instance x(&schema_);
  Instance y(&schema_);
  Value n1 = symbols_.FreshNull();
  Value n2 = symbols_.FreshNull();
  // x: shared null across two facts; y: distinct nulls.
  x.AddFact(e_, {a_, n1});
  x.AddFact(e_, {n1, b_});
  y.AddFact(e_, {a_, n1});
  y.AddFact(e_, {n2, b_});
  EXPECT_NE(x.CanonicalFingerprint(), y.CanonicalFingerprint());
}

TEST_F(InstanceTest, ToStringIsSortedAndReadable) {
  Instance instance(&schema_);
  instance.AddFact(e_, {b_, c_});
  instance.AddFact(e_, {a_, b_});
  EXPECT_EQ(instance.ToString(symbols_), "E(a,b).\nE(b,c).");
}

TEST_F(InstanceTest, AllFactsRoundTrip) {
  Instance instance(&schema_);
  instance.AddFact(e_, {a_, b_});
  instance.AddFact(u_, {c_});
  std::vector<Fact> facts = instance.AllFacts();
  EXPECT_EQ(facts.size(), 2u);
  for (const Fact& f : facts) {
    EXPECT_TRUE(instance.Contains(f));
  }
}

}  // namespace
}  // namespace pdx
