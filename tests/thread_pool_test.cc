#include "base/thread_pool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace pdx {
namespace {

TEST(ThreadPoolTest, HardwareConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1);
}

TEST(ThreadPoolTest, SizeCountsCallerThread) {
  ThreadPool solo(1);
  EXPECT_EQ(solo.size(), 1);
  ThreadPool quad(4);
  EXPECT_EQ(quad.size(), 4);
}

// Every index in [0, n) runs exactly once, for a spread of sizes relative
// to the worker count (empty, fewer than threads, equal, much larger).
TEST(ThreadPoolTest, ParallelForCoversEachIndexOnce) {
  ThreadPool pool(4);
  for (size_t n : {0u, 1u, 3u, 4u, 5u, 64u, 10'000u}) {
    std::vector<std::atomic<int>> hits(n);
    pool.ParallelFor(n, [&](size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " of " << n;
    }
  }
}

// Single-thread pools take the inline path and must behave identically.
TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  std::vector<int> hits(1000, 0);  // plain ints: no other thread may touch
  pool.ParallelFor(hits.size(), [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

// Effects of the body happen-before ParallelFor returns: summing into
// per-index slots and reading them afterwards is race-free.
TEST(ThreadPoolTest, ResultsVisibleAfterReturn) {
  ThreadPool pool(4);
  constexpr size_t kN = 4096;
  std::vector<int64_t> out(kN, 0);
  pool.ParallelFor(kN, [&](size_t i) { out[i] = static_cast<int64_t>(i) * i; });
  int64_t sum = 0;
  for (int64_t v : out) sum += v;
  int64_t expect = 0;
  for (size_t i = 0; i < kN; ++i) expect += static_cast<int64_t>(i) * i;
  EXPECT_EQ(sum, expect);
}

// Heavily skewed work: the first shard holds all the slow indexes, so
// finishing in reasonable time requires the other participants to steal.
// Correctness (exactly-once) is what's asserted; TSan checks the rest.
TEST(ThreadPoolTest, SkewedWorkIsStolen) {
  ThreadPool pool(4);
  constexpr size_t kN = 256;
  std::vector<std::atomic<int>> hits(kN);
  std::atomic<int64_t> spun{0};
  pool.ParallelFor(kN, [&](size_t i) {
    if (i < kN / 4) {
      // Busy work concentrated in the first quarter (= first shard).
      int64_t acc = 0;
      for (int64_t k = 0; k < 20'000; ++k) acc += k ^ static_cast<int64_t>(i);
      spun.fetch_add(acc, std::memory_order_relaxed);
    }
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

// The pool is reusable across many jobs (the chase runs one job per
// dependency per round).
TEST(ThreadPoolTest, ManySequentialJobs) {
  ThreadPool pool(3);
  std::atomic<int64_t> total{0};
  for (int job = 0; job < 200; ++job) {
    pool.ParallelFor(17, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 200 * 17);
}

// --- ParallelForAsync / Wait (cross-dependency pipelining) -------------

// Workers process the async job while the caller does unrelated work
// between Start and Wait; every index runs exactly once and all effects
// are visible after Wait.
TEST(ThreadPoolTest, AsyncOverlapsCallerWork) {
  ThreadPool pool(4);
  constexpr size_t kN = 2048;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelForAsync(kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  // Caller-side work the async job must not disturb (this is what the
  // chase's apply phase does while the next collect runs).
  int64_t acc = 0;
  for (int64_t k = 0; k < 100'000; ++k) acc += k ^ (k << 1);
  pool.Wait();
  EXPECT_NE(acc, 0);
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

// Plain (non-atomic) writes by the async body happen-before Wait returns.
TEST(ThreadPoolTest, AsyncResultsVisibleAfterWait) {
  ThreadPool pool(4);
  constexpr size_t kN = 4096;
  std::vector<int64_t> out(kN, 0);
  pool.ParallelForAsync(kN,
                        [&](size_t i) { out[i] = static_cast<int64_t>(i) + 7; });
  pool.Wait();
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(out[i], static_cast<int64_t>(i) + 7) << "index " << i;
  }
}

// n == 0 and worker-less pools defer the job and run it inline at Wait;
// both must still execute exactly once (or not at all for n == 0).
TEST(ThreadPoolTest, AsyncDegenerateCases) {
  ThreadPool solo(1);  // caller only: deferred-inline path
  std::vector<int> hits(64, 0);
  solo.ParallelForAsync(hits.size(), [&](size_t i) { ++hits[i]; });
  solo.Wait();
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }

  ThreadPool pool(4);
  std::atomic<int> ran{0};
  pool.ParallelForAsync(0, [&](size_t) { ran.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(ran.load(), 0);
}

// Wait without a pending async job is a no-op, and the pool alternates
// freely between async and synchronous jobs.
TEST(ThreadPoolTest, AsyncInterleavesWithParallelFor) {
  ThreadPool pool(3);
  pool.Wait();  // nothing pending: must return immediately
  std::atomic<int64_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelForAsync(13, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
    pool.Wait();
    pool.ParallelFor(17, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50 * (13 + 17));
}

// --- One-off task queue (Submit/Shutdown) --------------------------------

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  constexpr int kTasks = 200;
  std::atomic<int> ran{0};
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(pool.Submit([&] { ran.fetch_add(1); }));
  }
  pool.Shutdown();  // drains: every accepted task has run by return
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPoolTest, SubmitTasksRunConcurrently) {
  ThreadPool pool(3);  // two workers
  // Two tasks that each wait for the other: only concurrent execution
  // lets them finish.
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  auto rendezvous = [&] {
    std::unique_lock<std::mutex> lock(mu);
    ++arrived;
    cv.notify_all();
    cv.wait(lock, [&] { return arrived == 2; });
  };
  ASSERT_TRUE(pool.Submit(rendezvous));
  ASSERT_TRUE(pool.Submit(rendezvous));
  pool.Shutdown();
  EXPECT_EQ(arrived, 2);
}

TEST(ThreadPoolTest, SubmitWithoutWorkersRunsInline) {
  ThreadPool pool(1);  // caller-only pool: no worker threads
  std::thread::id ran_on;
  ASSERT_TRUE(pool.Submit([&] { ran_on = std::this_thread::get_id(); }));
  EXPECT_EQ(ran_on, std::this_thread::get_id());
}

// Tasks submitted while a shutdown is in progress are refused and never
// run; tasks accepted before the shutdown all complete first.
TEST(ThreadPoolTest, SubmitDuringShutdownIsRefused) {
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    ran.fetch_add(1);
  }));

  std::thread closer([&] { pool.Shutdown(); });
  // Shutdown is now blocked draining the parked task. Poll until its
  // draining flag is visible to Submit, then assert refusal.
  while (pool.Submit([&] { ran.fetch_add(1000); })) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  closer.join();
  EXPECT_FALSE(pool.Submit([&] { ran.fetch_add(1000); }));
  // Only the parked task (and possibly pre-drain extras) ran — nothing
  // refused did. Every pre-drain extra added 1000 and was drained too.
  EXPECT_EQ(ran.load() % 1000, 1);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.Submit([&] { ran.fetch_add(1); }));
  pool.Shutdown();
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_FALSE(pool.Submit([&] { ran.fetch_add(1); }));
}

}  // namespace
}  // namespace pdx
