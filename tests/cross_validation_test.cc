// Property-based cross-validation: on randomly generated C_tract settings
// and instances, the polynomial ExistsSolution algorithm (Figure 3) must
// agree with the sound-and-complete generic search solver, and any witness
// either solver produces must verify against Definition 2.

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "gtest/gtest.h"
#include "chase/stream.h"
#include "hom/instance_hom.h"
#include "hom/match_vm.h"
#include "logic/parser.h"
#include "pde/ctract_solver.h"
#include "pde/data_exchange.h"
#include "pde/generic_solver.h"
#include "pde/solution.h"
#include "tests/test_util.h"
#include "workload/churn.h"
#include "workload/setting_gen.h"

namespace pdx {
namespace {

using testing_util::Unwrap;

enum class GenKind { kLavTs, kFullSt };

struct CrossValidationParam {
  GenKind kind;
  uint64_t seed;
  int facts;
};

class CrossValidationTest
    : public ::testing::TestWithParam<CrossValidationParam> {};

TEST_P(CrossValidationTest, SolversAgreeOnRandomCtractSettings) {
  const CrossValidationParam& param = GetParam();
  Rng rng(param.seed);
  SymbolTable symbols;
  SettingGenOptions opts;
  opts.max_arity = 2;
  opts.st_tgd_count = 2;
  opts.ts_tgd_count = 2;
  StatusOr<GeneratedSetting> generated =
      param.kind == GenKind::kLavTs
          ? MakeRandomLavSetting(opts, &rng, &symbols)
          : MakeRandomFullStSetting(opts, &rng, &symbols);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  const PdeSetting& setting = generated->setting;
  ASSERT_TRUE(setting.InCtract())
      << "generator must produce C_tract settings:\nΣst:\n"
      << generated->sigma_st << "\nΣts:\n" << generated->sigma_ts;

  Instance source = MakeRandomSourceInstance(setting, param.facts,
                                             /*constant_pool=*/4, &rng,
                                             &symbols);
  Instance target = setting.EmptyInstance();

  CtractSolveResult fast =
      Unwrap(CtractExistsSolution(setting, source, target, &symbols),
             "CtractExistsSolution");

  GenericSolverOptions solver_options;
  solver_options.max_nodes = 200'000;
  GenericSolveResult slow = Unwrap(
      GenericExistsSolution(setting, source, target, &symbols,
                            solver_options),
      "GenericExistsSolution");
  if (slow.outcome == SolveOutcome::kBudgetExhausted) {
    GTEST_SKIP() << "generic solver budget exhausted on this seed";
  }

  EXPECT_EQ(fast.has_solution,
            slow.outcome == SolveOutcome::kSolutionFound)
      << "solver disagreement on seed " << param.seed << "\nΣst:\n"
      << generated->sigma_st << "\nΣts:\n" << generated->sigma_ts
      << "\nI:\n" << source.ToString(symbols);

  if (fast.has_solution) {
    EXPECT_TRUE(IsSolution(setting, source, target, *fast.solution, symbols))
        << "Ctract witness failed verification on seed " << param.seed;
  }
  if (slow.outcome == SolveOutcome::kSolutionFound) {
    EXPECT_TRUE(IsSolution(setting, source, target, *slow.solution, symbols))
        << "generic witness failed verification on seed " << param.seed;
  }
}

std::vector<CrossValidationParam> MakeParams() {
  std::vector<CrossValidationParam> params;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    params.push_back({GenKind::kLavTs, seed, 6});
    params.push_back({GenKind::kFullSt, seed, 6});
  }
  for (uint64_t seed = 100; seed <= 110; ++seed) {
    params.push_back({GenKind::kLavTs, seed, 12});
    params.push_back({GenKind::kFullSt, seed, 12});
  }
  return params;
}

std::string ParamName(
    const ::testing::TestParamInfo<CrossValidationParam>& info) {
  return std::string(info.param.kind == GenKind::kLavTs ? "LavTs"
                                                        : "FullSt") +
         "Seed" + std::to_string(info.param.seed) + "Facts" +
         std::to_string(info.param.facts);
}

INSTANTIATE_TEST_SUITE_P(RandomCtract, CrossValidationTest,
                         ::testing::ValuesIn(MakeParams()), ParamName);

// Non-empty target instances exercise the J ⊆ J' requirement.
class CrossValidationWithTargetTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrossValidationWithTargetTest, SolversAgreeWithNonEmptyJ) {
  Rng rng(GetParam());
  SymbolTable symbols;
  SettingGenOptions opts;
  opts.max_arity = 2;
  opts.st_tgd_count = 2;
  opts.ts_tgd_count = 2;
  GeneratedSetting generated =
      Unwrap(MakeRandomLavSetting(opts, &rng, &symbols));
  const PdeSetting& setting = generated.setting;
  Instance source =
      MakeRandomSourceInstance(setting, 5, 4, &rng, &symbols);
  Instance target =
      MakeRandomTargetInstance(setting, 3, 4, &rng, &symbols);

  CtractSolveResult fast = Unwrap(
      CtractExistsSolution(setting, source, target, &symbols));
  GenericSolverOptions solver_options;
  solver_options.max_nodes = 200'000;
  GenericSolveResult slow = Unwrap(GenericExistsSolution(
      setting, source, target, &symbols, solver_options));
  if (slow.outcome == SolveOutcome::kBudgetExhausted) {
    GTEST_SKIP() << "generic solver budget exhausted on this seed";
  }
  EXPECT_EQ(fast.has_solution,
            slow.outcome == SolveOutcome::kSolutionFound)
      << "seed " << GetParam() << "\nΣst:\n" << generated.sigma_st
      << "\nΣts:\n" << generated.sigma_ts << "\nI:\n"
      << source.ToString(symbols) << "\nJ:\n" << target.ToString(symbols);
  if (fast.has_solution) {
    EXPECT_TRUE(target.IsSubsetOf(*fast.solution));
    EXPECT_TRUE(
        IsSolution(setting, source, target, *fast.solution, symbols));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValidationWithTargetTest,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

// The chase strategy must be invisible to end-to-end solving: the C_tract
// solver (two chase phases) and the data exchange pipeline must return the
// same answers — and the same canonical instances — whether their chases
// run delta-driven or naively.
class ChaseStrategyCrossValidationTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaseStrategyCrossValidationTest, CtractAgreesAcrossStrategies) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  SymbolTable symbols;
  SettingGenOptions opts;
  opts.max_arity = 2;
  opts.st_tgd_count = 2;
  opts.ts_tgd_count = 2;
  GeneratedSetting generated =
      Unwrap(seed % 2 == 0 ? MakeRandomLavSetting(opts, &rng, &symbols)
                           : MakeRandomFullStSetting(opts, &rng, &symbols));
  const PdeSetting& setting = generated.setting;
  Instance source = MakeRandomSourceInstance(setting, 8, 4, &rng, &symbols);
  Instance target = MakeRandomTargetInstance(setting, 3, 4, &rng, &symbols);

  ChaseOptions naive_options;
  naive_options.strategy = ChaseStrategy::kRestrictedNaive;
  ChaseOptions delta_options;
  delta_options.strategy = ChaseStrategy::kRestricted;
  // Compiled-plan toggle per seed: even seeds run the delta engine
  // through the dependency compiler, odd seeds through the interpreter,
  // so both lanes stay covered by the randomized sweep.
  delta_options.compile_plans = seed % 2 == 0;

  CtractSolveResult naive = Unwrap(CtractExistsSolution(
      setting, source, target, &symbols, naive_options));
  CtractSolveResult delta = Unwrap(CtractExistsSolution(
      setting, source, target, &symbols, delta_options));

  EXPECT_EQ(naive.has_solution, delta.has_solution)
      << "strategy disagreement on seed " << seed << "\nΣst:\n"
      << generated.sigma_st << "\nΣts:\n" << generated.sigma_ts;
  if (naive.has_solution && delta.has_solution) {
    ASSERT_TRUE(naive.solution.has_value());
    ASSERT_TRUE(delta.solution.has_value());
    EXPECT_EQ(naive.solution->CanonicalFingerprint(),
              delta.solution->CanonicalFingerprint())
        << "seed " << seed;
    EXPECT_TRUE(
        IsSolution(setting, source, target, *delta.solution, symbols));
  }
}

TEST_P(ChaseStrategyCrossValidationTest, DataExchangeAgreesAcrossStrategies) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  SymbolTable symbols;
  // A data exchange setting (Σ_ts = ∅) with target tgds and a key egd, so
  // both chase engines exercise the tgd/egd interleaving end to end.
  PdeSetting setting = Unwrap(PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}, {"F", 2}},
      "E(x,y) -> exists z: H(x,z). E(x,y) & E(y,z) -> H(x,z).", "",
      "H(x,y) -> F(x,y). H(x,y) & H(x,z) -> y = z.", &symbols));
  Instance source = MakeRandomSourceInstance(setting, 10, 5, &rng, &symbols);
  Instance target = setting.EmptyInstance();

  ChaseOptions naive_options;
  naive_options.strategy = ChaseStrategy::kRestrictedNaive;
  ChaseOptions delta_options;
  delta_options.strategy = ChaseStrategy::kRestricted;
  delta_options.compile_plans = seed % 2 == 0;

  DataExchangeResult naive = Unwrap(SolveDataExchange(
      setting, source, target, &symbols, naive_options));
  DataExchangeResult delta = Unwrap(SolveDataExchange(
      setting, source, target, &symbols, delta_options));

  EXPECT_EQ(naive.has_solution, delta.has_solution) << "seed " << seed;

  // Plan-vs-interpreter: the same delta solve with compile_plans flipped
  // must agree on the verdict and on the universal solution up to null
  // renaming (the compiled executor's enumeration order — and hence fresh
  // null identities — is its own).
  ChaseOptions flipped_options = delta_options;
  flipped_options.compile_plans = !delta_options.compile_plans;
  DataExchangeResult flipped = Unwrap(SolveDataExchange(
      setting, source, target, &symbols, flipped_options));
  EXPECT_EQ(flipped.has_solution, delta.has_solution)
      << "compiled/interpreted disagreement on seed " << seed;
  if (flipped.has_solution && delta.has_solution) {
    ASSERT_TRUE(flipped.universal_solution.has_value());
    EXPECT_EQ(flipped.nulls_created, delta.nulls_created) << "seed " << seed;
    EXPECT_EQ(
        testing_util::CanonicalizedFingerprint(*flipped.universal_solution),
        testing_util::CanonicalizedFingerprint(*delta.universal_solution))
        << "compiled/interpreted fingerprint divergence on seed " << seed;
  }
  if (naive.has_solution && delta.has_solution) {
    ASSERT_TRUE(naive.universal_solution.has_value());
    ASSERT_TRUE(delta.universal_solution.has_value());
    EXPECT_EQ(naive.universal_solution->CanonicalFingerprint(),
              delta.universal_solution->CanonicalFingerprint())
        << "seed " << seed;
  }

  // VM-vs-tree: the compiled delta solve run once per planned executor
  // (toggled per seed which leg runs first; both always run). The bytecode
  // VM and the tree executor enumerate identical match sets, so verdict,
  // null count and the solution up to null renaming must agree.
  {
    ChaseOptions compiled_options = delta_options;
    compiled_options.compile_plans = true;
    const bool saved_force = ForceTreeExec();
    const bool vm_first = seed % 2 == 0;
    SetForceTreeExec(!vm_first);
    DataExchangeResult first = Unwrap(SolveDataExchange(
        setting, source, target, &symbols, compiled_options));
    SetForceTreeExec(vm_first);
    DataExchangeResult second = Unwrap(SolveDataExchange(
        setting, source, target, &symbols, compiled_options));
    SetForceTreeExec(saved_force);
    EXPECT_EQ(first.has_solution, second.has_solution)
        << "vm/tree disagreement on seed " << seed;
    if (first.has_solution && second.has_solution) {
      ASSERT_TRUE(first.universal_solution.has_value());
      ASSERT_TRUE(second.universal_solution.has_value());
      EXPECT_EQ(first.nulls_created, second.nulls_created)
          << "seed " << seed;
      EXPECT_EQ(
          testing_util::CanonicalizedFingerprint(*first.universal_solution),
          testing_util::CanonicalizedFingerprint(*second.universal_solution))
          << "vm/tree fingerprint divergence on seed " << seed;
    }
  }

  // A randomized parallel configuration of the delta solve (thread count
  // and schedule drawn per seed; narrowed to the pinned schedule under
  // the TSan lanes) must return the same verdict, and the same universal
  // solution up to null renaming.
  ChaseOptions parallel_options = delta_options;
  const int kThreadChoices[] = {1, 2, 8};
  parallel_options.num_threads = kThreadChoices[rng.UniformInt(3)];
  parallel_options.schedule = testing_util::DrawSchedule(rng.UniformInt(3));
  DataExchangeResult parallel = Unwrap(SolveDataExchange(
      setting, source, target, &symbols, parallel_options));
  EXPECT_EQ(parallel.has_solution, delta.has_solution)
      << "seed " << seed << " threads " << parallel_options.num_threads
      << " schedule " << ScheduleName(parallel_options.schedule);
  if (parallel.has_solution && delta.has_solution) {
    ASSERT_TRUE(parallel.universal_solution.has_value());
    EXPECT_EQ(parallel.nulls_created, delta.nulls_created) << "seed " << seed;
    EXPECT_EQ(
        testing_util::CanonicalizedFingerprint(*parallel.universal_solution),
        testing_util::CanonicalizedFingerprint(*delta.universal_solution))
        << "seed " << seed << " threads " << parallel_options.num_threads
        << " schedule " << ScheduleName(parallel_options.schedule);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaseStrategyCrossValidationTest,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

// Egd-heavy chase cross-validation: on randomized instances whose every
// invented null is hit by a key egd, the union-find engine (kRestricted)
// and the Substitute-based baseline (kRestrictedNaive) must agree on the
// outcome, produce homomorphically equivalent results, and hash to the
// same resolved fingerprint — and the union-find result's resolve-on-read
// view must match its own materialization.
class EgdHeavyChaseCrossValidationTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EgdHeavyChaseCrossValidationTest, EnginesAgreeOnEgdHeavyChases) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  SymbolTable symbols;
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("E", 2).ok());
  ASSERT_TRUE(schema.AddRelation("H", 2).ok());
  ASSERT_TRUE(schema.AddRelation("F", 2).ok());
  RelationId e = 0, h = 1;

  // The shared existential across the two head atoms forces one null per
  // E-edge; the key egds then merge them in cascades across H and F.
  auto deps = ParseDependencies(
      "E(x,y) -> exists z: H(x,z) & F(y,z). "
      "H(x,y) & H(x,z) -> y = z. "
      "F(x,y) & F(x,z) -> y = z.",
      schema, &symbols);
  ASSERT_TRUE(deps.ok()) << deps.status().ToString();

  Instance start(&schema);
  int nodes = 3 + static_cast<int>(rng.UniformInt(5));
  int edges = nodes * (1 + static_cast<int>(rng.UniformInt(3)));
  auto node = [&](int i) {
    return symbols.InternConstant("n" + std::to_string(i));
  };
  for (int i = 0; i < edges; ++i) {
    start.AddFact(e, {node(static_cast<int>(rng.UniformInt(nodes))),
                      node(static_cast<int>(rng.UniformInt(nodes)))});
  }
  // Pre-seed some H-facts: nulls join the merge cascades; constants make
  // constant/constant egd failures reachable, which both engines must
  // report identically.
  int seeded = static_cast<int>(rng.UniformInt(4));
  for (int i = 0; i < seeded; ++i) {
    Value key = node(static_cast<int>(rng.UniformInt(nodes)));
    Value payload = rng.UniformInt(3) == 0
                        ? node(static_cast<int>(rng.UniformInt(nodes)))
                        : symbols.FreshNull();
    start.AddFact(h, {key, payload});
  }

  ChaseOptions naive_options;
  naive_options.strategy = ChaseStrategy::kRestrictedNaive;
  ChaseOptions delta_options;
  delta_options.strategy = ChaseStrategy::kRestricted;
  delta_options.compile_plans = seed % 2 == 0;
  ChaseResult naive =
      Chase(start, deps->tgds, deps->egds, &symbols, naive_options);
  ChaseResult delta =
      Chase(start, deps->tgds, deps->egds, &symbols, delta_options);

  ASSERT_EQ(naive.outcome, delta.outcome)
      << "engine disagreement on seed " << seed << "\nI:\n"
      << start.ToString(symbols);

  // A randomized parallel configuration of the delta chase (threads and
  // schedule drawn per seed; narrowed to the pinned schedule under the
  // TSan lanes): same outcome always; on success, the same step count —
  // pending sets are schedule-invariant — and the same result up to null
  // renaming.
  ChaseOptions parallel_options = delta_options;
  const int kThreadChoices[] = {1, 2, 8};
  parallel_options.num_threads = kThreadChoices[rng.UniformInt(3)];
  parallel_options.schedule = testing_util::DrawSchedule(rng.UniformInt(3));
  ChaseResult parallel =
      Chase(start, deps->tgds, deps->egds, &symbols, parallel_options);
  ASSERT_EQ(parallel.outcome, delta.outcome)
      << "parallel disagreement on seed " << seed << " threads "
      << parallel_options.num_threads << " schedule "
      << ScheduleName(parallel_options.schedule) << "\nI:\n"
      << start.ToString(symbols);
  if (delta.outcome == ChaseOutcome::kSuccess) {
    EXPECT_EQ(parallel.steps, delta.steps) << "seed " << seed;
    EXPECT_EQ(parallel.nulls_created, delta.nulls_created) << "seed " << seed;
    EXPECT_EQ(testing_util::CanonicalizedFingerprint(parallel.instance),
              testing_util::CanonicalizedFingerprint(delta.instance))
        << "seed " << seed << " threads " << parallel_options.num_threads
        << " schedule " << ScheduleName(parallel_options.schedule);
  }

  // Plan-vs-interpreter cross-validation: flipping compile_plans on the
  // sequential delta chase must reproduce the outcome, counts, and the
  // result up to null renaming (the two-atom bodies here make the
  // compiled join order coincide with the interpreter's).
  ChaseOptions flipped_options = delta_options;
  flipped_options.compile_plans = !delta_options.compile_plans;
  ChaseResult flipped =
      Chase(start, deps->tgds, deps->egds, &symbols, flipped_options);
  ASSERT_EQ(flipped.outcome, delta.outcome)
      << "compiled/interpreted disagreement on seed " << seed << "\nI:\n"
      << start.ToString(symbols);
  if (delta.outcome == ChaseOutcome::kSuccess) {
    EXPECT_EQ(flipped.steps, delta.steps) << "seed " << seed;
    EXPECT_EQ(flipped.nulls_created, delta.nulls_created) << "seed " << seed;
    EXPECT_EQ(testing_util::CanonicalizedFingerprint(flipped.instance),
              testing_util::CanonicalizedFingerprint(delta.instance))
        << "compiled/interpreted fingerprint divergence on seed " << seed;
  }

  // VM-vs-tree cross-validation on the egd-heavy chase: the compiled
  // sequential delta chase under both planned executors (leg order toggled
  // per seed). Identical match sets per partition force identical
  // outcomes, step counts, null counts, and results up to null renaming.
  {
    ChaseOptions compiled_options = delta_options;
    compiled_options.compile_plans = true;
    const bool saved_force = ForceTreeExec();
    const bool vm_first = seed % 2 == 1;
    SetForceTreeExec(!vm_first);
    ChaseResult first =
        Chase(start, deps->tgds, deps->egds, &symbols, compiled_options);
    SetForceTreeExec(vm_first);
    ChaseResult second =
        Chase(start, deps->tgds, deps->egds, &symbols, compiled_options);
    SetForceTreeExec(saved_force);
    ASSERT_EQ(first.outcome, second.outcome)
        << "vm/tree disagreement on seed " << seed << "\nI:\n"
        << start.ToString(symbols);
    if (first.outcome == ChaseOutcome::kSuccess) {
      EXPECT_EQ(first.steps, second.steps) << "seed " << seed;
      EXPECT_EQ(first.nulls_created, second.nulls_created)
          << "seed " << seed;
      EXPECT_EQ(testing_util::CanonicalizedFingerprint(first.instance),
                testing_util::CanonicalizedFingerprint(second.instance))
          << "vm/tree fingerprint divergence on seed " << seed;
    }
  }

  if (delta.outcome != ChaseOutcome::kSuccess) return;

  EXPECT_EQ(naive.instance.CanonicalFingerprint(),
            delta.instance.CanonicalFingerprint())
      << "resolved fingerprints diverge on seed " << seed << "\nnaive:\n"
      << naive.instance.ToString(symbols) << "\ndelta:\n"
      << delta.instance.ToString(symbols);

  // Homomorphic equivalence in both directions (fingerprint equality
  // already implies isomorphism w.h.p.; this checks it constructively).
  EXPECT_TRUE(
      FindInstanceHomomorphism(naive.instance, delta.instance).has_value())
      << "no homomorphism naive -> delta on seed " << seed;
  EXPECT_TRUE(
      FindInstanceHomomorphism(delta.instance, naive.instance).has_value())
      << "no homomorphism delta -> naive on seed " << seed;

  // Both results actually satisfy the dependencies they were chased with.
  EXPECT_TRUE(SatisfiesAll(naive.instance, *deps)) << "seed " << seed;
  EXPECT_TRUE(SatisfiesAll(delta.instance, *deps)) << "seed " << seed;

  // The union-find instance's live resolve-on-read view must agree with
  // its own materialization, and expose only class roots.
  Instance compact = delta.instance.CompactResolved();
  EXPECT_FALSE(compact.has_merges());
  EXPECT_EQ(compact.CanonicalFingerprint(),
            delta.instance.CanonicalFingerprint());
  EXPECT_EQ(compact.fact_count(), delta.instance.ResolvedFactCount());
  std::unordered_set<uint64_t> roots;
  for (Value v : delta.instance.Nulls()) {
    EXPECT_EQ(delta.instance.ResolveValue(v), v)
        << "resolved view exposed a non-root null on seed " << seed;
    EXPECT_TRUE(roots.insert(v.packed()).second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EgdHeavyChaseCrossValidationTest,
                         ::testing::Range(uint64_t{1}, uint64_t{41}));

// Churn lane: a random C_tract setting whose source instance lives in a
// StreamingChase and churns through ±Δ batches. After every batch, the
// incremental exists verdict (witness carried across batches through
// GenericExistsSolutionIncremental) must agree with a fresh generic
// solver — and with the Figure 3 fast path — replaying the churn stream's
// net instance into a fresh engine.
class StreamingChurnCrossValidationTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamingChurnCrossValidationTest,
       IncrementalExistsAgreesWithFreshSolversUnderChurn) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  SymbolTable symbols;
  SettingGenOptions opts;
  opts.max_arity = 2;
  opts.st_tgd_count = 2;
  opts.ts_tgd_count = 2;
  StatusOr<GeneratedSetting> generated =
      MakeRandomLavSetting(opts, &rng, &symbols);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  const PdeSetting& setting = generated->setting;

  Instance seed_source =
      MakeRandomSourceInstance(setting, 12, /*constant_pool=*/4, &rng,
                               &symbols);
  std::vector<Fact> universe = seed_source.AllFacts();
  std::sort(universe.begin(), universe.end());
  universe.erase(std::unique(universe.begin(), universe.end()),
                 universe.end());
  if (universe.size() < 4) {
    GTEST_SKIP() << "degenerate universe on this seed";
  }

  ChurnOptions churn_options;
  churn_options.delete_rate = 0.3;
  churn_options.insert_rate = 0.25;
  churn_options.overlap = 0.5;
  churn_options.seed = seed * 977 + 5;
  ChurnStream churn(universe, universe.size() / 2, churn_options);

  // Dependency-free stream: it maintains exactly the net source, the way
  // pdxd's writer owns the admitted base.
  StreamingChase stream(&setting.schema(), {}, {}, &symbols);
  ASSERT_TRUE(stream.Initialize(churn.NetInstance(&setting.schema())).ok());

  Instance target = setting.EmptyInstance();
  GenericSolverOptions solver_options;
  solver_options.max_nodes = 200'000;
  std::optional<Instance> witness;

  for (int batch_idx = 0; batch_idx < 4; ++batch_idx) {
    ChurnBatch batch = churn.Next();
    ASSERT_TRUE(stream.ResumeWithDeltas(batch.adds, batch.deletes).ok());

    IncrementalSolveResult incremental =
        Unwrap(GenericExistsSolutionIncremental(
                   setting, stream.instance(), target,
                   witness.has_value() ? &*witness : nullptr, &symbols,
                   solver_options),
               "GenericExistsSolutionIncremental");
    GenericSolveResult fresh =
        Unwrap(GenericExistsSolution(setting,
                                     churn.NetInstance(&setting.schema()),
                                     target, &symbols, solver_options),
               "GenericExistsSolution");
    if (incremental.result.outcome == SolveOutcome::kBudgetExhausted ||
        fresh.outcome == SolveOutcome::kBudgetExhausted) {
      GTEST_SKIP() << "solver budget exhausted on this seed";
    }
    EXPECT_EQ(incremental.result.outcome, fresh.outcome)
        << "incremental/fresh divergence, seed " << seed << " batch "
        << batch_idx << (incremental.revalidated ? " (revalidated)" : "");

    CtractSolveResult fast = Unwrap(
        CtractExistsSolution(setting, stream.instance(), target, &symbols),
        "CtractExistsSolution");
    EXPECT_EQ(fast.has_solution,
              fresh.outcome == SolveOutcome::kSolutionFound)
        << "fast-path divergence, seed " << seed << " batch " << batch_idx;

    if (incremental.result.outcome == SolveOutcome::kSolutionFound) {
      ASSERT_TRUE(incremental.result.solution.has_value());
      EXPECT_TRUE(IsSolution(setting, stream.instance(), target,
                             *incremental.result.solution, symbols))
          << "incremental witness failed verification, seed " << seed
          << " batch " << batch_idx;
      witness = *incremental.result.solution;
    } else {
      witness.reset();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingChurnCrossValidationTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace pdx
