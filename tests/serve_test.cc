// Tests for the pdxd serving subsystem: JSON wire format, tenant
// registry, generation snapshot isolation, write-batch coalescing,
// deadline handling, the protocol handler, and a full socket round trip
// against a live Server (including the Prometheus /metrics endpoint).
//
// The coalescing and isolation tests use real threads, so this test also
// carries the `parallel` label and runs under TSan in tools/check.sh.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/metrics.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "serve/tenant.h"

namespace pdx {
namespace serve {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

// Example 1 of the paper: full st-tgd, no target constraints.
constexpr char kExample1[] =
    "[source]\nE/2\n[target]\nH/2\n"
    "[st]\nE(x,z) & E(z,y) -> H(x,y).\n"
    "[ts]\nH(x,y) -> E(x,y).\n";

// The same setting spelled differently: comments, blank lines, spacing.
constexpr char kExample1Variant[] =
    "# same setting, other spelling\n"
    "[source]\n  E/2\n\n[target]\nH/2   # target peer\n"
    "[st]\n  E(x,z)&E(z,y)  ->  H(x,y).\n"
    "[ts]\nH(x,y)->E(x,y).\n";

// A setting whose target egd makes writes able to conflict: H is a
// function of its first column.
constexpr char kKeyed[] =
    "[source]\nE/2\n[target]\nH/2\n"
    "[st]\nE(x,y) -> H(x,y).\n"
    "[t]\nH(x,y) & H(x,z) -> y = z.\n";

std::chrono::steady_clock::time_point Soon() {
  return steady_clock::now() + std::chrono::seconds(30);
}

std::shared_ptr<Tenant> MustCreate(std::string_view setting_text) {
  auto tenant = Tenant::Create(setting_text, TenantOptions());
  EXPECT_TRUE(tenant.ok()) << tenant.status().ToString();
  return *tenant;
}

// --- JSON ---------------------------------------------------------------

TEST(ServeJsonTest, ParsesScalarsAndNesting) {
  auto v = ParseJson(
      R"({"a": 1, "b": -2.5, "c": "x\ny", "d": [true, false, null], "e": {}})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->GetInt("a"), 1);
  EXPECT_DOUBLE_EQ(v->Find("b")->as_double(), -2.5);
  EXPECT_EQ(v->GetString("c"), "x\ny");
  EXPECT_EQ(v->Find("d")->items().size(), 3u);
  EXPECT_TRUE(v->Find("e")->is_object());
}

TEST(ServeJsonTest, DumpRoundTrips) {
  JsonValue obj = JsonValue::Object();
  obj.Set("id", JsonValue::Int(7));
  obj.Set("text", JsonValue::String("quote \" backslash \\ control \x01"));
  JsonValue arr = JsonValue::Array();
  arr.Add(JsonValue::Bool(true));
  arr.Add(JsonValue::Null());
  obj.Set("list", std::move(arr));
  auto reparsed = ParseJson(obj.Dump());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->Dump(), obj.Dump());
}

TEST(ServeJsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{\"a\": }").ok());
  EXPECT_FALSE(ParseJson("[1, 2,]").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  // Depth bomb: a clean error, not a stack overflow.
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

// --- Tenant identity and registry ---------------------------------------

TEST(ServeRegistryTest, IdIsSpellingInvariant) {
  auto a = Tenant::IdForSetting(kExample1);
  auto b = Tenant::IdForSetting(kExample1Variant);
  auto c = Tenant::IdForSetting(kKeyed);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_NE(*a, *c);
  EXPECT_FALSE(Tenant::IdForSetting("[source]\n").ok());
}

TEST(ServeRegistryTest, LoadDedupesFindAndEvict) {
  TenantRegistry registry;
  auto first = registry.Load(kExample1);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = registry.Load(kExample1Variant);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get()) << "variant spelling must dedupe";
  EXPECT_EQ(registry.size(), 1u);

  auto found = registry.Find((*first)->id());
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->get(), first->get());
  EXPECT_EQ(registry.Find("0000000000000000").status().code(),
            StatusCode::kNotFound);

  ASSERT_TRUE(registry.Evict((*first)->id()).ok());
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.Find((*first)->id()).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(registry.Evict((*first)->id()).code(), StatusCode::kNotFound);
}

TEST(ServeRegistryTest, RejectsMalformedSetting) {
  TenantRegistry registry;
  EXPECT_EQ(registry.Load("[source]\nE/2\n").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.size(), 0u);
}

// --- Generations and snapshot isolation ---------------------------------

TEST(ServeTenantTest, WriteAdvancesGenerationReaderKeepsPin) {
  std::shared_ptr<Tenant> tenant = MustCreate(kExample1);

  std::shared_ptr<const Generation> pinned = tenant->Snapshot();
  EXPECT_EQ(pinned->seq(), 0u);
  uint64_t fp0 = pinned->Fingerprint();

  auto written = tenant->Write("E(a,b). E(b,c).", Soon());
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_EQ(written->generation, 1u);

  // The reader's pinned generation is untouched by the publish: same
  // seq, same fingerprint, still empty.
  EXPECT_EQ(pinned->seq(), 0u);
  EXPECT_EQ(pinned->Fingerprint(), fp0);
  EXPECT_EQ(pinned->canonical().ResolvedFactCount(), 0u);

  std::shared_ptr<const Generation> current = tenant->Snapshot();
  EXPECT_EQ(current->seq(), 1u);
  EXPECT_NE(current->Fingerprint(), fp0);
  EXPECT_EQ(written->fingerprint, current->Fingerprint());
  // E(a,b), E(b,c) chased through Σst: H(a,c) appears in the canonical
  // instance.
  EXPECT_EQ(current->base().fact_count(), 2u);
  EXPECT_EQ(current->canonical().ResolvedFactCount(), 3u);
}

TEST(ServeTenantTest, ContainsProbesCanonicalInstance) {
  std::shared_ptr<Tenant> tenant = MustCreate(kExample1);
  ASSERT_TRUE(tenant->Write("E(a,b). E(b,c).", Soon()).ok());
  auto hit = tenant->Contains("H(a,c).");
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->contains);
  auto miss = tenant->Contains("H(c,a).");
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->contains);
}

TEST(ServeTenantTest, ExistsAndCertainOnPinnedGeneration) {
  std::shared_ptr<Tenant> tenant = MustCreate(kExample1);
  // The closed triangle: H(a,c) is forced by Σst and justified back
  // through Σts by E(a,c), so a solution exists. (The open path
  // E(a,b),E(b,c) alone famously has none — see ExistsSeesNoSolution.)
  ASSERT_TRUE(tenant->Write("E(a,b). E(b,c). E(a,c).", Soon()).ok());

  auto exists = tenant->Exists("auto");
  ASSERT_TRUE(exists.ok()) << exists.status().ToString();
  EXPECT_TRUE(exists->exists);
  EXPECT_EQ(exists->generation, 1u);
  // The auto verdict memoizes per generation.
  auto again = tenant->Exists("auto");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->solver, "cached");

  auto certain = tenant->Certain("q(x,y) :- H(x,y).", "exact");
  ASSERT_TRUE(certain.ok()) << certain.status().ToString();
  EXPECT_FALSE(certain->no_solution);
  ASSERT_EQ(certain->answers.size(), 1u);
  EXPECT_EQ(certain->answers[0], "(a,c)");
}

// The paper's no-solution example: the open path forces H(a,c), whose
// Σts justification E(a,c) is missing from the source.
TEST(ServeTenantTest, ExistsSeesNoSolution) {
  std::shared_ptr<Tenant> tenant = MustCreate(kExample1);
  ASSERT_TRUE(tenant->Write("E(a,b). E(b,c).", Soon()).ok());
  auto exists = tenant->Exists("auto");
  ASSERT_TRUE(exists.ok()) << exists.status().ToString();
  EXPECT_FALSE(exists->exists);
  auto certain = tenant->Certain("q(x,y) :- H(x,y).", "exact");
  ASSERT_TRUE(certain.ok());
  EXPECT_TRUE(certain->no_solution);
}

TEST(ServeTenantTest, IncompatibleWriteRejectedGenerationUnchanged) {
  std::shared_ptr<Tenant> tenant = MustCreate(kKeyed);
  ASSERT_TRUE(tenant->Write("E(a,b).", Soon()).ok());
  uint64_t fp = tenant->Snapshot()->Fingerprint();

  // E(a,c) forces H(a,b) and H(a,c) with b = c: two distinct constants —
  // the chase fails, so no solution would exist. Rejected, not published.
  auto bad = tenant->Write("E(a,c).", Soon());
  EXPECT_EQ(bad.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(tenant->Snapshot()->seq(), 1u);
  EXPECT_EQ(tenant->Snapshot()->Fingerprint(), fp);

  // The tenant still accepts compatible writes afterwards.
  EXPECT_TRUE(tenant->Write("E(b,d).", Soon()).ok());
}

TEST(ServeTenantTest, SourceFactsMustBeGround) {
  std::shared_ptr<Tenant> tenant = MustCreate(kExample1);
  auto bad = tenant->Write("E(a,_x).", Soon());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

// --- Batch coalescing ----------------------------------------------------

// N compatible writes admitted while the writer is frozen drain as ONE
// chase round, and the coalesced result equals the one-chase-per-write
// reference (canonical fingerprints are null-renaming invariant).
TEST(ServeTenantTest, PausedWritesCoalesceIntoOneBatch) {
  constexpr int kWriters = 8;
  std::shared_ptr<Tenant> tenant = MustCreate(kExample1);
  ServeMetrics& metrics = GlobalServeMetrics();

  tenant->PauseWrites();
  int64_t batches_before = metrics.batches_total.Value();

  std::vector<std::thread> writers;
  std::atomic<int> failures{0};
  for (int i = 0; i < kWriters; ++i) {
    writers.emplace_back([&, i] {
      std::string facts = "E(n" + std::to_string(i) + ", n" +
                          std::to_string(i + 1) + ").";
      if (!tenant->Write(facts, Soon()).ok()) failures.fetch_add(1);
    });
  }
  // Wait until every write is admitted, then release the writer.
  auto give_up = steady_clock::now() + std::chrono::seconds(30);
  while (tenant->Stats().queue_depth < static_cast<size_t>(kWriters) &&
         steady_clock::now() < give_up) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  ASSERT_EQ(tenant->Stats().queue_depth, static_cast<size_t>(kWriters));
  tenant->ResumeWrites();
  for (std::thread& t : writers) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(metrics.batches_total.Value() - batches_before, 1)
      << "8 compatible writes must cost exactly one chase round";
  std::shared_ptr<const Generation> gen = tenant->Snapshot();
  EXPECT_EQ(gen->seq(), 1u) << "one batch publishes one generation";

  // Reference: the same writes applied one per chase round.
  std::shared_ptr<Tenant> reference = MustCreate(kExample1);
  for (int i = 0; i < kWriters; ++i) {
    std::string facts = "E(n" + std::to_string(i) + ", n" +
                        std::to_string(i + 1) + ").";
    ASSERT_TRUE(reference->Write(facts, Soon()).ok());
  }
  std::shared_ptr<const Generation> ref = reference->Snapshot();
  EXPECT_EQ(ref->seq(), static_cast<uint64_t>(kWriters));
  EXPECT_EQ(gen->Fingerprint(), ref->Fingerprint())
      << "coalesced chase must equal one-chase-per-write";
  EXPECT_EQ(gen->base().fact_count(), ref->base().fact_count());
  EXPECT_EQ(gen->canonical().ResolvedFactCount(),
            ref->canonical().ResolvedFactCount());
}

// A coalesced batch whose union fails is replayed ticket by ticket: only
// the writes that conflict with the published prefix are rejected.
TEST(ServeTenantTest, FailedBatchReplaysIndividually) {
  std::shared_ptr<Tenant> tenant = MustCreate(kKeyed);
  tenant->PauseWrites();

  // E(k,v1) and E(k,v2) are each fine alone but clash through the key
  // egd; E(other,w) is compatible with either.
  std::vector<std::string> writes = {"E(k,v1).", "E(k,v2).", "E(other,w)."};
  std::atomic<int> ok_count{0}, rejected{0};
  std::vector<std::thread> writers;
  for (const std::string& facts : writes) {
    writers.emplace_back([&, facts] {
      auto result = tenant->Write(facts, Soon());
      if (result.ok()) {
        ok_count.fetch_add(1);
      } else if (result.status().code() == StatusCode::kFailedPrecondition) {
        rejected.fetch_add(1);
      }
    });
  }
  auto give_up = steady_clock::now() + std::chrono::seconds(30);
  while (tenant->Stats().queue_depth < writes.size() &&
         steady_clock::now() < give_up) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  ASSERT_EQ(tenant->Stats().queue_depth, writes.size());
  tenant->ResumeWrites();
  for (std::thread& t : writers) t.join();

  // Exactly one of the clashing pair survives, plus the innocent one.
  EXPECT_EQ(ok_count.load(), 2);
  EXPECT_EQ(rejected.load(), 1);
  auto contains = tenant->Contains("H(other,w).");
  ASSERT_TRUE(contains.ok());
  EXPECT_TRUE(contains->contains) << "the compatible write must land";
}

// --- Retraction ----------------------------------------------------------

TEST(ServeTenantTest, RetractRemovesFactAndItsConsequences) {
  std::shared_ptr<Tenant> tenant = MustCreate(kExample1);
  ASSERT_TRUE(tenant->Write("E(a,b). E(b,c).", Soon()).ok());
  ASSERT_TRUE(tenant->Contains("H(a,c).")->contains);

  auto retracted = tenant->Retract("E(b,c).", Soon());
  ASSERT_TRUE(retracted.ok()) << retracted.status().ToString();
  EXPECT_EQ(retracted->generation, 2u);
  EXPECT_FALSE(tenant->Contains("E(b,c).")->contains);
  EXPECT_FALSE(tenant->Contains("H(a,c).")->contains)
      << "the derived consequence must go with its only justification";
  EXPECT_TRUE(tenant->Contains("E(a,b).")->contains);

  // Retracting a derived fact is a no-op: consequences are not inputs.
  ASSERT_TRUE(tenant->Write("E(b,c).", Soon()).ok());
  ASSERT_TRUE(tenant->Contains("H(a,c).")->contains);
  ASSERT_TRUE(tenant->Retract("H(a,c).", Soon()).ok());
  EXPECT_TRUE(tenant->Contains("H(a,c).")->contains);

  // So is retracting something never admitted.
  ASSERT_TRUE(tenant->Retract("E(z,z).", Soon()).ok());
  EXPECT_TRUE(tenant->Contains("E(a,b).")->contains);
}

// Retraction re-answers exists incrementally: breaking the triangle flips
// the verdict to false, restoring it flips it back (and the generic
// solver's cached witness revalidates instead of re-searching).
TEST(ServeTenantTest, RetractFlipsExistsVerdict) {
  std::shared_ptr<Tenant> tenant = MustCreate(kExample1);
  ASSERT_TRUE(tenant->Write("E(a,b). E(b,c). E(a,c).", Soon()).ok());
  auto exists = tenant->Exists("generic");
  ASSERT_TRUE(exists.ok()) << exists.status().ToString();
  EXPECT_TRUE(exists->exists);

  ASSERT_TRUE(tenant->Retract("E(a,c).", Soon()).ok());
  exists = tenant->Exists("generic");
  ASSERT_TRUE(exists.ok()) << exists.status().ToString();
  EXPECT_FALSE(exists->exists)
      << "the open path's forced H(a,c) has no Σts justification left";

  ASSERT_TRUE(tenant->Write("E(a,c).", Soon()).ok());
  exists = tenant->Exists("generic");
  ASSERT_TRUE(exists.ok()) << exists.status().ToString();
  EXPECT_TRUE(exists->exists);
}

// A mixed paused burst — writes and retracts — coalesces into ONE ±Δ
// chase round, applying all deletes before all adds: a retract and a
// re-write of the same fact in one batch leave the fact present.
TEST(ServeTenantTest, MixedWriteRetractBurstCoalescesDeletesFirst) {
  std::shared_ptr<Tenant> tenant = MustCreate(kExample1);
  ServeMetrics& metrics = GlobalServeMetrics();
  ASSERT_TRUE(tenant->Write("E(a,b). E(b,c).", Soon()).ok());

  tenant->PauseWrites();
  int64_t batches_before = metrics.batches_total.Value();
  int64_t retracts_before = metrics.retract_requests_total.Value();

  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  workers.emplace_back([&] {
    if (!tenant->Retract("E(b,c).", Soon()).ok()) failures.fetch_add(1);
  });
  workers.emplace_back([&] {
    if (!tenant->Retract("E(a,b).", Soon()).ok()) failures.fetch_add(1);
  });
  workers.emplace_back([&] {
    if (!tenant->Write("E(a,b). E(x,y).", Soon()).ok()) failures.fetch_add(1);
  });
  auto give_up = steady_clock::now() + std::chrono::seconds(30);
  while (tenant->Stats().queue_depth < 3 && steady_clock::now() < give_up) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  ASSERT_EQ(tenant->Stats().queue_depth, 3u);
  tenant->ResumeWrites();
  for (std::thread& t : workers) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(metrics.batches_total.Value() - batches_before, 1)
      << "the mixed burst must cost exactly one ±Δ round";
  EXPECT_EQ(metrics.retract_requests_total.Value() - retracts_before, 2);
  EXPECT_EQ(tenant->Snapshot()->seq(), 2u);
  // Deleted and not re-added: gone. Deleted and re-added in the same
  // batch: present (deletes-before-adds).
  EXPECT_FALSE(tenant->Contains("E(b,c).")->contains);
  EXPECT_TRUE(tenant->Contains("E(a,b).")->contains);
  EXPECT_TRUE(tenant->Contains("E(x,y).")->contains);
}

// Per-ticket replay when a retraction decides satisfiability: the union
// batch {retract E(k,v1), write E(k,v2), write E(k,v3)} clashes on the
// key egd, so the writer replays in admission order — the retract frees
// the key, the first write claims it, the second is rejected.
TEST(ServeTenantTest, RetractionDecidesEgdBatchReplay) {
  std::shared_ptr<Tenant> tenant = MustCreate(kKeyed);
  ServeMetrics& metrics = GlobalServeMetrics();
  ASSERT_TRUE(tenant->Write("E(k,v1).", Soon()).ok());

  tenant->PauseWrites();
  int64_t retries_before = metrics.batch_retries_total.Value();
  std::atomic<int> ok_count{0}, rejected{0};
  std::vector<std::thread> workers;
  auto submit = [&](const std::string& facts, bool retract) {
    workers.emplace_back([&, facts, retract] {
      auto result = retract ? tenant->Retract(facts, Soon())
                            : tenant->Write(facts, Soon());
      if (result.ok()) {
        ok_count.fetch_add(1);
      } else if (result.status().code() == StatusCode::kFailedPrecondition) {
        rejected.fetch_add(1);
      }
    });
    // Admission is FIFO: wait for this ticket before submitting the next
    // so the replay order is deterministic.
    auto give_up = steady_clock::now() + std::chrono::seconds(30);
    size_t want = workers.size();
    while (tenant->Stats().queue_depth < want &&
           steady_clock::now() < give_up) {
      std::this_thread::sleep_for(milliseconds(1));
    }
  };
  submit("E(k,v1).", /*retract=*/true);
  submit("E(k,v2).", /*retract=*/false);
  submit("E(k,v3).", /*retract=*/false);
  ASSERT_EQ(tenant->Stats().queue_depth, 3u);
  tenant->ResumeWrites();
  for (std::thread& t : workers) t.join();

  EXPECT_EQ(ok_count.load(), 2) << "the retract and exactly one write land";
  EXPECT_EQ(rejected.load(), 1);
  EXPECT_EQ(metrics.batch_retries_total.Value() - retries_before, 3);
  EXPECT_FALSE(tenant->Contains("H(k,v1).")->contains);
  EXPECT_TRUE(tenant->Contains("H(k,v2).")->contains);
  EXPECT_FALSE(tenant->Contains("H(k,v3).")->contains);
}

// Snapshot isolation under retraction: a pinned generation keeps its
// facts and fingerprint while later generations retract them, and
// re-admitting the fact restores the exact pre-retraction fingerprint
// (this setting's chase invents no nulls).
TEST(ServeTenantTest, PinnedGenerationImmuneToRetraction) {
  std::shared_ptr<Tenant> tenant = MustCreate(kExample1);
  ASSERT_TRUE(tenant->Write("E(a,b). E(b,c). E(a,c).", Soon()).ok());
  std::shared_ptr<const Generation> pinned = tenant->Snapshot();
  const uint64_t fp1 = pinned->Fingerprint();

  ASSERT_TRUE(tenant->Retract("E(a,c).", Soon()).ok());
  std::shared_ptr<const Generation> after = tenant->Snapshot();
  EXPECT_NE(after->Fingerprint(), fp1);
  EXPECT_EQ(after->base().fact_count(), 2u);

  // The pinned reader still sees the pre-retraction state.
  EXPECT_EQ(pinned->seq(), 1u);
  EXPECT_EQ(pinned->Fingerprint(), fp1);
  EXPECT_EQ(pinned->base().fact_count(), 3u);

  // Re-admitting restores the fingerprint bit-for-bit.
  ASSERT_TRUE(tenant->Write("E(a,c).", Soon()).ok());
  EXPECT_EQ(tenant->Snapshot()->Fingerprint(), fp1);
}

TEST(ServeTenantTest, WriteDeadlineExceededWhileWriterFrozen) {
  std::shared_ptr<Tenant> tenant = MustCreate(kExample1);
  tenant->PauseWrites();
  auto result = tenant->Write("E(a,b).", steady_clock::now() + milliseconds(50));
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // The write was admitted, so it still publishes after the thaw.
  tenant->ResumeWrites();
  auto give_up = steady_clock::now() + std::chrono::seconds(30);
  while (tenant->Snapshot()->seq() < 1 && steady_clock::now() < give_up) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_EQ(tenant->Snapshot()->seq(), 1u);
}

TEST(ServeTenantTest, ShutdownRefusesNewWritesDrainsAdmitted) {
  std::shared_ptr<Tenant> tenant = MustCreate(kExample1);
  ASSERT_TRUE(tenant->Write("E(a,b).", Soon()).ok());
  tenant->Shutdown();
  auto late = tenant->Write("E(b,c).", Soon());
  EXPECT_EQ(late.status().code(), StatusCode::kFailedPrecondition);
  // Reads still serve off the last published generation.
  EXPECT_EQ(tenant->Snapshot()->seq(), 1u);
}

// --- Protocol handler (no socket) ----------------------------------------

std::string ErrorCode(const JsonValue& response) {
  const JsonValue* error = response.Find("error");
  return error != nullptr ? error->GetString("code") : "";
}

JsonValue Handle(ProtocolHandler& handler, const std::string& line) {
  bool shutdown_requested = false;
  auto parsed = ParseJson(handler.HandleLine(line, &shutdown_requested));
  EXPECT_TRUE(parsed.ok()) << "responses must always be valid JSON";
  return parsed.ok() ? *std::move(parsed) : JsonValue::Null();
}

TEST(ServeProtocolTest, MalformedAndUnknownRequests) {
  TenantRegistry registry;
  ProtocolHandler handler(&registry, ProtocolOptions());

  JsonValue bad = Handle(handler, "{nonsense");
  EXPECT_FALSE(bad.GetBool("ok"));
  EXPECT_EQ(ErrorCode(bad), "INVALID_ARGUMENT");
  EXPECT_TRUE(bad.Find("id")->is_null());

  JsonValue not_object = Handle(handler, "[1,2,3]");
  EXPECT_FALSE(not_object.GetBool("ok"));

  JsonValue no_verb = Handle(handler, R"({"id": 42})");
  EXPECT_FALSE(no_verb.GetBool("ok"));
  EXPECT_EQ(no_verb.GetInt("id"), 42) << "id echoes even on errors";

  JsonValue unknown = Handle(handler, R"({"id": 1, "verb": "frobnicate"})");
  EXPECT_FALSE(unknown.GetBool("ok"));
  EXPECT_EQ(ErrorCode(unknown), "INVALID_ARGUMENT");

  JsonValue no_tenant = Handle(handler, R"({"id": 2, "verb": "exists"})");
  EXPECT_FALSE(no_tenant.GetBool("ok"));

  JsonValue missing = Handle(
      handler,
      R"({"id": 3, "verb": "exists", "tenant": "deadbeefdeadbeef"})");
  EXPECT_FALSE(missing.GetBool("ok"));
  EXPECT_EQ(ErrorCode(missing), "NOT_FOUND");
}

TEST(ServeProtocolTest, LoadWriteReadLifecycle) {
  TenantRegistry registry;
  ProtocolHandler handler(&registry, ProtocolOptions());

  JsonValue request = JsonValue::Object();
  request.Set("id", JsonValue::Int(1));
  request.Set("verb", JsonValue::String("load"));
  request.Set("setting", JsonValue::String(kExample1));
  // The closed triangle: the only instance here with a solution.
  request.Set("facts", JsonValue::String("E(a,b). E(b,c). E(a,c)."));
  JsonValue loaded = Handle(handler, request.Dump());
  ASSERT_TRUE(loaded.GetBool("ok")) << loaded.Dump();
  std::string tenant = loaded.GetString("tenant");
  ASSERT_FALSE(tenant.empty());
  EXPECT_EQ(loaded.GetInt("generation"), 1);
  std::string fingerprint = loaded.GetString("fingerprint");
  EXPECT_EQ(fingerprint.size(), 16u);

  JsonValue exists = Handle(
      handler, R"({"id": 2, "verb": "exists", "tenant": ")" + tenant + "\"}");
  ASSERT_TRUE(exists.GetBool("ok")) << exists.Dump();
  EXPECT_TRUE(exists.GetBool("exists"));
  EXPECT_EQ(exists.GetString("fingerprint"), fingerprint)
      << "read pinned the generation the load published";

  JsonValue certain = Handle(handler,
                             R"({"id": 3, "verb": "certain", "tenant": ")" +
                                 tenant +
                                 R"(", "query": "q(x,y) :- H(x,y)."})");
  ASSERT_TRUE(certain.GetBool("ok")) << certain.Dump();
  EXPECT_EQ(certain.Find("answers")->items().size(), 1u);

  JsonValue written = Handle(
      handler, R"({"id": 4, "verb": "write", "tenant": ")" + tenant +
                   R"(", "facts": "E(c,d)."})");
  ASSERT_TRUE(written.GetBool("ok")) << written.Dump();
  EXPECT_EQ(written.GetInt("generation"), 2);
  EXPECT_NE(written.GetString("fingerprint"), fingerprint);

  JsonValue stats = Handle(handler, R"({"id": 5, "verb": "stats"})");
  ASSERT_TRUE(stats.GetBool("ok"));
  ASSERT_EQ(stats.Find("tenants")->items().size(), 1u);
  EXPECT_EQ(stats.Find("tenants")->items()[0].GetString("tenant"), tenant);

  JsonValue evicted = Handle(
      handler, R"({"id": 6, "verb": "evict", "tenant": ")" + tenant + "\"}");
  ASSERT_TRUE(evicted.GetBool("ok"));
  EXPECT_EQ(registry.size(), 0u);
}

TEST(ServeProtocolTest, RetractVerbRoundTrip) {
  TenantRegistry registry;
  ProtocolHandler handler(&registry, ProtocolOptions());

  JsonValue request = JsonValue::Object();
  request.Set("id", JsonValue::Int(1));
  request.Set("verb", JsonValue::String("load"));
  request.Set("setting", JsonValue::String(kExample1));
  request.Set("facts", JsonValue::String("E(a,b). E(b,c)."));
  JsonValue loaded = Handle(handler, request.Dump());
  ASSERT_TRUE(loaded.GetBool("ok")) << loaded.Dump();
  std::string tenant = loaded.GetString("tenant");
  std::string fingerprint = loaded.GetString("fingerprint");

  JsonValue retracted = Handle(
      handler, R"({"id": 2, "verb": "retract", "tenant": ")" + tenant +
                   R"(", "facts": "E(b,c)."})");
  ASSERT_TRUE(retracted.GetBool("ok")) << retracted.Dump();
  EXPECT_EQ(retracted.GetInt("generation"), 2);
  EXPECT_NE(retracted.GetString("fingerprint"), fingerprint);

  JsonValue contains = Handle(
      handler, R"({"id": 3, "verb": "contains", "tenant": ")" + tenant +
                   R"(", "facts": "H(a,c)."})");
  ASSERT_TRUE(contains.GetBool("ok")) << contains.Dump();
  EXPECT_FALSE(contains.GetBool("contains"))
      << "the retraction's consequences must be invisible to readers";

  JsonValue missing_facts = Handle(
      handler,
      R"({"id": 4, "verb": "retract", "tenant": ")" + tenant + "\"}");
  EXPECT_FALSE(missing_facts.GetBool("ok"));
  EXPECT_EQ(ErrorCode(missing_facts), "INVALID_ARGUMENT");
}

TEST(ServeProtocolTest, ExpiredDeadlineRejectedOnArrival) {
  TenantRegistry registry;
  auto tenant = registry.Load(kExample1);
  ASSERT_TRUE(tenant.ok());
  ProtocolHandler handler(&registry, ProtocolOptions());
  // A 1 ms deadline spent entirely in a paused writer's queue.
  (*tenant)->PauseWrites();
  JsonValue late = Handle(handler,
                          R"({"id": 1, "verb": "write", "tenant": ")" +
                              (*tenant)->id() +
                              R"(", "facts": "E(a,b).", "deadline_ms": 1})");
  EXPECT_FALSE(late.GetBool("ok"));
  EXPECT_EQ(ErrorCode(late), "DEADLINE_EXCEEDED");
  (*tenant)->ResumeWrites();
}

TEST(ServeProtocolTest, ShutdownVerbSetsFlagAfterResponse) {
  TenantRegistry registry;
  ProtocolHandler handler(&registry, ProtocolOptions());
  bool shutdown_requested = false;
  auto response =
      ParseJson(handler.HandleLine(R"({"verb": "shutdown"})",
                                   &shutdown_requested));
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->GetBool("ok"));
  EXPECT_TRUE(response->GetBool("draining"));
  EXPECT_TRUE(shutdown_requested);
}

// --- Full socket round trip ----------------------------------------------

class ServeSocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ =
        "/tmp/pdx_serve_test_" + std::to_string(::getpid()) + ".sock";
    metrics_path_ =
        "/tmp/pdx_serve_test_metrics_" + std::to_string(::getpid()) + ".sock";
    ServerOptions options;
    options.address = "unix:" + socket_path_;
    options.metrics_address = "unix:" + metrics_path_;
    options.worker_threads = 4;
    auto server = Server::Start(options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
  }

  std::string socket_path_;
  std::string metrics_path_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServeSocketTest, EndToEndRequestMixAndMetrics) {
  auto client = Client::Connect(server_->address());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto pong = client->CallRaw(R"({"id": 1, "verb": "ping"})");
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_TRUE(pong->GetBool("ok"));
  EXPECT_TRUE(pong->GetBool("pong"));
  EXPECT_EQ(pong->GetInt("id"), 1);

  JsonValue load = JsonValue::Object();
  load.Set("id", JsonValue::Int(2));
  load.Set("verb", JsonValue::String("load"));
  load.Set("setting", JsonValue::String(kExample1));
  load.Set("facts", JsonValue::String("E(a,b). E(b,c)."));
  auto loaded = client->Call(load);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->GetBool("ok")) << loaded->Dump();
  std::string tenant = loaded->GetString("tenant");

  auto contains = client->CallRaw(
      R"({"id": 3, "verb": "contains", "tenant": ")" + tenant +
      R"(", "facts": "H(a,c)."})");
  ASSERT_TRUE(contains.ok());
  EXPECT_TRUE(contains->GetBool("contains"));

  // Malformed line over the wire: an error response, connection stays up.
  auto garbage = client->CallRaw("this is not json");
  ASSERT_TRUE(garbage.ok());
  EXPECT_FALSE(garbage->GetBool("ok"));
  auto after = client->CallRaw(R"({"id": 4, "verb": "ping"})");
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->GetBool("ok")) << "connection must survive bad input";

  // Scrape /metrics: Prometheus 0.0.4 text with the serve families.
  auto body = HttpGet("unix:" + metrics_path_, "/metrics");
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  EXPECT_NE(body->find("# TYPE pdx_serve_requests_total counter"),
            std::string::npos)
      << body->substr(0, 500);
  EXPECT_NE(body->find("pdx_serve_write_requests_total"), std::string::npos);
  EXPECT_NE(body->find("pdx_serve_batches_total"), std::string::npos);
  EXPECT_NE(body->find("pdx_serve_latency_micros_write_bucket"),
            std::string::npos);
  EXPECT_NE(body->find("le=\"+Inf\""), std::string::npos);
}

TEST_F(ServeSocketTest, ConcurrentClientsSeeConsistentGenerations) {
  auto setup = Client::Connect(server_->address());
  ASSERT_TRUE(setup.ok());
  JsonValue load = JsonValue::Object();
  load.Set("verb", JsonValue::String("load"));
  load.Set("setting", JsonValue::String(kExample1));
  auto loaded = setup->Call(load);
  ASSERT_TRUE(loaded.ok() && loaded->GetBool("ok"));
  std::string tenant = loaded->GetString("tenant");

  constexpr int kClients = 4;
  constexpr int kRounds = 16;
  std::atomic<int> errors{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto conn = Client::Connect(server_->address());
      if (!conn.ok()) {
        errors.fetch_add(kRounds);
        return;
      }
      for (int i = 0; i < kRounds; ++i) {
        std::string suffix = std::to_string(c) + "_" + std::to_string(i);
        auto written = conn->CallRaw("{\"verb\":\"write\",\"tenant\":\"" +
                                     tenant + "\",\"facts\":\"E(u" + suffix +
                                     ", v" + suffix + ").\"}");
        if (!written.ok() || !written->GetBool("ok")) errors.fetch_add(1);
        auto exists = conn->CallRaw(
            R"({"verb": "exists", "tenant": ")" + tenant + "\"}");
        if (!exists.ok() || !exists->GetBool("ok")) errors.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(errors.load(), 0);

  auto stats = setup->CallRaw(R"({"verb": "stats", "tenant": ")" + tenant +
                              "\"}");
  ASSERT_TRUE(stats.ok() && stats->GetBool("ok")) << stats->Dump();
  const JsonValue& entry = stats->Find("tenants")->items()[0];
  EXPECT_EQ(entry.GetInt("base_facts"), kClients * kRounds);
  EXPECT_EQ(entry.GetInt("queue_depth"), 0);
}

TEST_F(ServeSocketTest, ShutdownVerbDrainsGracefully) {
  auto client = Client::Connect(server_->address());
  ASSERT_TRUE(client.ok());
  auto response = client->CallRaw(R"({"id": 9, "verb": "shutdown"})");
  ASSERT_TRUE(response.ok()) << "the response must be sent before draining";
  EXPECT_TRUE(response->GetBool("draining"));
  EXPECT_TRUE(server_->WaitForShutdownRequest(milliseconds(5000)));
  server_->Shutdown();
  // The socket is gone: new connections are refused.
  EXPECT_FALSE(Client::Connect(server_->address()).ok());
  server_ = nullptr;
}

}  // namespace
}  // namespace serve
}  // namespace pdx
