#include "pde/pdms.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace pdx {
namespace {

using testing_util::MakeExample1Setting;
using testing_util::ParseOrDie;

class PdmsTest : public ::testing::Test {
 protected:
  PdmsTest() : setting_(MakeExample1Setting(&symbols_)) {}

  SymbolTable symbols_;
  PdeSetting setting_;
};

TEST_F(PdmsTest, TranslationBuildsStorageDescriptions) {
  PdmsDescription pdms = BuildPdms(setting_, symbols_);
  ASSERT_EQ(pdms.storage_descriptions.size(), 2u);
  // Source relations get equality descriptions (immutability), target
  // relations containment descriptions (data may be added).
  const StorageDescription& e = pdms.storage_descriptions[0];
  EXPECT_EQ(e.local_relation, "E*");
  EXPECT_EQ(e.peer_relation, "E");
  EXPECT_TRUE(e.is_equality);
  const StorageDescription& h = pdms.storage_descriptions[1];
  EXPECT_EQ(h.local_relation, "H*");
  EXPECT_FALSE(h.is_equality);
  EXPECT_EQ(pdms.peer_mappings.size(), 2u);
}

TEST_F(PdmsTest, ToStringRendersMappings) {
  PdmsDescription pdms = BuildPdms(setting_, symbols_);
  std::string rendered = pdms.ToString();
  EXPECT_NE(rendered.find("E* = E"), std::string::npos);
  EXPECT_NE(rendered.find("H* ⊆ H"), std::string::npos);
  EXPECT_NE(rendered.find("mapping:"), std::string::npos);
}

// The Section 2 correspondence: K is a solution for (I*, J*) iff the data
// instance assignment is consistent with N(P).
TEST_F(PdmsTest, ConsistencyMatchesSolutionhood) {
  Instance i_star = ParseOrDie(setting_, "E(a,a).", &symbols_);
  Instance j_star = setting_.EmptyInstance();
  Instance k = ParseOrDie(setting_, "H(a,a).", &symbols_);
  EXPECT_TRUE(IsConsistentPdmsInstance(setting_, i_star, j_star, i_star, k,
                                       symbols_));
  // The empty K is not consistent: the Σ_st mapping is violated.
  EXPECT_FALSE(IsConsistentPdmsInstance(setting_, i_star, j_star, i_star,
                                        setting_.EmptyInstance(),
                                        symbols_));
}

TEST_F(PdmsTest, EqualityStorageDescriptionEnforced) {
  Instance i_star = ParseOrDie(setting_, "E(a,a).", &symbols_);
  Instance mutated = ParseOrDie(setting_, "E(a,a). E(a,b).", &symbols_);
  Instance k = ParseOrDie(setting_, "H(a,a).", &symbols_);
  // The source peer's instance deviates from its local store: not allowed.
  EXPECT_FALSE(IsConsistentPdmsInstance(setting_, i_star,
                                        setting_.EmptyInstance(), mutated, k,
                                        symbols_));
}

TEST_F(PdmsTest, ContainmentStorageDescriptionEnforced) {
  Instance i_star = ParseOrDie(setting_, "E(a,a).", &symbols_);
  Instance j_star = ParseOrDie(setting_, "H(a,a).", &symbols_);
  // K must contain J*: dropping it breaks the containment description.
  EXPECT_FALSE(IsConsistentPdmsInstance(setting_, i_star, j_star, i_star,
                                        setting_.EmptyInstance(),
                                        symbols_));
  EXPECT_TRUE(IsConsistentPdmsInstance(setting_, i_star, j_star, i_star,
                                       j_star, symbols_));
}

}  // namespace
}  // namespace pdx
