#include "workload/graph_gen.h"

#include <set>

#include "gtest/gtest.h"
#include "workload/random.h"
#include "workload/setting_gen.h"

namespace pdx {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint32_t v = rng.UniformInt(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(GraphGenTest, ErdosRenyiRespectsEdgeProbabilityBounds) {
  Rng rng(5);
  Graph empty = ErdosRenyi(10, 0.0, &rng);
  EXPECT_TRUE(empty.edges.empty());
  Graph full = ErdosRenyi(10, 1.0, &rng);
  EXPECT_EQ(full.edges.size(), 45u);
}

TEST(GraphGenTest, PlantCliqueGuaranteesClique) {
  Rng rng(9);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = PlantClique(ErdosRenyi(8, 0.1, &rng), 4, &rng);
    EXPECT_TRUE(HasClique(g, 4));
  }
}

TEST(GraphGenTest, HasCliqueOracle) {
  EXPECT_TRUE(HasClique(CompleteGraph(5), 5));
  EXPECT_FALSE(HasClique(CompleteGraph(4), 5));
  EXPECT_TRUE(HasClique(PathGraph(5), 2));
  EXPECT_FALSE(HasClique(PathGraph(5), 3));
  EXPECT_TRUE(HasClique(Graph{3, {}}, 1));
  EXPECT_FALSE(HasClique(Graph{0, {}}, 1));
  EXPECT_TRUE(HasClique(Graph{0, {}}, 0));
}

TEST(GraphGenTest, Is3ColorableOracle) {
  EXPECT_TRUE(Is3Colorable(CompleteGraph(3)));
  EXPECT_FALSE(Is3Colorable(CompleteGraph(4)));
  EXPECT_TRUE(Is3Colorable(PathGraph(10)));
  EXPECT_TRUE(Is3Colorable(Graph{0, {}}));
}

TEST(GraphGenTest, HasEdgeIsSymmetric) {
  Graph g = PathGraph(3);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(SettingGenTest, LavSettingsAreAlwaysInCtract) {
  SettingGenOptions opts;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    SymbolTable symbols;
    auto generated = MakeRandomLavSetting(opts, &rng, &symbols);
    ASSERT_TRUE(generated.ok()) << generated.status().ToString();
    EXPECT_TRUE(generated->setting.InCtract())
        << "seed " << seed << "\nΣst:\n" << generated->sigma_st
        << "\nΣts:\n" << generated->sigma_ts;
    for (const Tgd& tgd : generated->setting.ts_tgds()) {
      EXPECT_TRUE(tgd.IsLav());
    }
  }
}

TEST(SettingGenTest, FullStSettingsAreAlwaysInCtract) {
  SettingGenOptions opts;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    SymbolTable symbols;
    auto generated = MakeRandomFullStSetting(opts, &rng, &symbols);
    ASSERT_TRUE(generated.ok()) << generated.status().ToString();
    EXPECT_TRUE(generated->setting.InCtract())
        << "seed " << seed << "\nΣst:\n" << generated->sigma_st
        << "\nΣts:\n" << generated->sigma_ts;
    for (const Tgd& tgd : generated->setting.st_tgds()) {
      EXPECT_TRUE(tgd.IsFull());
    }
  }
}

TEST(SettingGenTest, RandomInstancesPopulateTheRightSide) {
  Rng rng(3);
  SymbolTable symbols;
  SettingGenOptions opts;
  auto generated = MakeRandomLavSetting(opts, &rng, &symbols);
  ASSERT_TRUE(generated.ok());
  Instance source = MakeRandomSourceInstance(generated->setting, 10, 5,
                                             &rng, &symbols);
  EXPECT_TRUE(generated->setting.ValidateSourceInstance(source).ok());
  Instance target = MakeRandomTargetInstance(generated->setting, 10, 5,
                                             &rng, &symbols);
  EXPECT_TRUE(generated->setting.ValidateTargetInstance(target).ok());
}

}  // namespace
}  // namespace pdx
