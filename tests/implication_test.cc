#include "logic/implication.h"

#include "gtest/gtest.h"
#include "logic/parser.h"

namespace pdx {
namespace {

class ImplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.AddRelation("E", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("H", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("F", 2).ok());
  }

  ConjunctiveQuery Query(const char* text) {
    auto q = ParseQuery(text, schema_, &symbols_);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(q).value();
  }

  DependencySet Deps(const char* text) {
    auto deps = ParseDependencies(text, schema_, &symbols_);
    EXPECT_TRUE(deps.ok()) << deps.status().ToString();
    return std::move(deps).value();
  }

  Schema schema_;
  SymbolTable symbols_;
};

// ---- Chandra-Merlin containment ----------------------------------------

TEST_F(ImplicationTest, MoreRestrictiveQueryIsContained) {
  // Triangles are contained in paths of length 2.
  ConjunctiveQuery triangle = Query("q(x) :- E(x,y) & E(y,z) & E(z,x).");
  ConjunctiveQuery path = Query("q(x) :- E(x,y) & E(y,z).");
  EXPECT_TRUE(*IsContainedIn(triangle, path, schema_));
  EXPECT_FALSE(*IsContainedIn(path, triangle, schema_));
}

TEST_F(ImplicationTest, EquivalentQueriesContainEachOther) {
  ConjunctiveQuery q1 = Query("q(x,y) :- E(x,y).");
  ConjunctiveQuery q2 = Query("q(a,b) :- E(a,b) & E(a,b).");
  EXPECT_TRUE(*IsContainedIn(q1, q2, schema_));
  EXPECT_TRUE(*IsContainedIn(q2, q1, schema_));
}

TEST_F(ImplicationTest, SelfLoopContainedInEdge) {
  ConjunctiveQuery loop = Query("q(x) :- E(x,x).");
  ConjunctiveQuery edge = Query("q(x) :- E(x,y).");
  EXPECT_TRUE(*IsContainedIn(loop, edge, schema_));
  EXPECT_FALSE(*IsContainedIn(edge, loop, schema_));
}

TEST_F(ImplicationTest, HeadVariablesMustAlign) {
  // Same bodies, different projections: q(x) vs q(y) over E(x,y).
  ConjunctiveQuery source_end = Query("q(x) :- E(x,y).");
  ConjunctiveQuery target_end = Query("q(y) :- E(x,y).");
  EXPECT_FALSE(*IsContainedIn(source_end, target_end, schema_));
}

TEST_F(ImplicationTest, ConstantsRestrictContainment) {
  ConjunctiveQuery with_constant = Query("q(x) :- E('a', x).");
  ConjunctiveQuery general = Query("q(x) :- E(y, x).");
  EXPECT_TRUE(*IsContainedIn(with_constant, general, schema_));
  EXPECT_FALSE(*IsContainedIn(general, with_constant, schema_));
}

TEST_F(ImplicationTest, ContainmentRejectsArityMismatch) {
  ConjunctiveQuery unary = Query("q(x) :- E(x,y).");
  ConjunctiveQuery binary = Query("q(x,y) :- E(x,y).");
  EXPECT_FALSE(IsContainedIn(unary, binary, schema_).ok());
}

// ---- Dependency implication via the chase -------------------------------

TEST_F(ImplicationTest, TransitivityStyleImplication) {
  // Σ: E ⊆ H and H transitive ⇒ E(x,y) & E(y,z) -> H(x,z).
  DependencySet sigma =
      Deps("E(x,y) -> H(x,y). H(x,y) & H(y,z) -> H(x,z).");
  auto candidate =
      ParseTgd("E(x,y) & E(y,z) -> H(x,z).", schema_, &symbols_);
  ASSERT_TRUE(candidate.ok());
  EXPECT_TRUE(*ImpliesTgd(sigma, *candidate, schema_, &symbols_));

  auto not_implied = ParseTgd("E(x,y) -> H(y,x).", schema_, &symbols_);
  ASSERT_TRUE(not_implied.ok());
  EXPECT_FALSE(*ImpliesTgd(sigma, *not_implied, schema_, &symbols_));
}

TEST_F(ImplicationTest, ExistentialHeadsWitnessedByChase) {
  DependencySet sigma = Deps("E(x,y) -> exists z: H(y,z).");
  auto candidate =
      ParseTgd("E(x,y) & E(y,w) -> exists u: H(w,u).", schema_, &symbols_);
  ASSERT_TRUE(candidate.ok());
  EXPECT_TRUE(*ImpliesTgd(sigma, *candidate, schema_, &symbols_));
}

TEST_F(ImplicationTest, EgdImplication) {
  // Key on H propagated through a copy tgd: Σ = {E ⊆ H, key(H)} implies
  // key-like behaviour on E... through H.
  DependencySet sigma =
      Deps("E(x,y) -> H(x,y). H(x,y) & H(x,z) -> y = z.");
  auto implied =
      ParseEgd("E(x,y) & E(x,z) -> y = z.", schema_, &symbols_);
  ASSERT_TRUE(implied.ok());
  EXPECT_TRUE(*ImpliesEgd(sigma, *implied, schema_, &symbols_));

  auto not_implied =
      ParseEgd("E(x,y) & E(z,y) -> x = z.", schema_, &symbols_);
  ASSERT_TRUE(not_implied.ok());
  EXPECT_FALSE(*ImpliesEgd(sigma, *not_implied, schema_, &symbols_));
}

TEST_F(ImplicationTest, TrivialImplications) {
  DependencySet sigma = Deps("E(x,y) -> H(x,y).");
  // Every dependency implies itself.
  EXPECT_TRUE(*ImpliesTgd(sigma, sigma.tgds[0], schema_, &symbols_));
  // A weaker head is implied.
  auto weaker =
      ParseTgd("E(x,y) -> exists u: H(x,u).", schema_, &symbols_);
  ASSERT_TRUE(weaker.ok());
  EXPECT_TRUE(*ImpliesTgd(sigma, *weaker, schema_, &symbols_));
}

TEST_F(ImplicationTest, RequiresWeaklyAcyclicSigma) {
  DependencySet sigma = Deps("H(x,y) -> exists z: H(y,z).");
  auto candidate = ParseTgd("E(x,y) -> H(x,y).", schema_, &symbols_);
  ASSERT_TRUE(candidate.ok());
  auto result = ImpliesTgd(sigma, *candidate, schema_, &symbols_);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ImplicationTest, VacuousImplicationWhenBodyUnsatisfiable) {
  // Σ forces H's columns equal to a constant pair that clashes with the
  // candidate's constants: chase failure ⇒ vacuously implied.
  DependencySet sigma =
      Deps("H(x,y) -> F(x,'c0'). F(x,y) & F(x,z) -> y = z.");
  auto candidate = ParseTgd("H(x,y) & F(x,'c1') -> E(x,x).", schema_,
                            &symbols_);
  ASSERT_TRUE(candidate.ok());
  EXPECT_TRUE(*ImpliesTgd(sigma, *candidate, schema_, &symbols_));
}

}  // namespace
}  // namespace pdx
