#include "relational/instance_diff.h"

#include "gtest/gtest.h"

namespace pdx {
namespace {

class InstanceDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.AddRelation("E", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("U", 1).ok());
    a_ = symbols_.InternConstant("a");
    b_ = symbols_.InternConstant("b");
    c_ = symbols_.InternConstant("c");
  }

  Schema schema_;
  SymbolTable symbols_;
  Value a_, b_, c_;
};

TEST_F(InstanceDiffTest, EmptyDiffForEqualInstances) {
  Instance x(&schema_);
  x.AddFact(0, {a_, b_});
  Instance y = x;
  InstanceDiff diff = DiffInstances(x, y);
  EXPECT_TRUE(diff.empty());
  EXPECT_EQ(DiffToString(diff, schema_, symbols_), "");
}

TEST_F(InstanceDiffTest, ReportsAddedAndRemoved) {
  Instance before(&schema_);
  before.AddFact(0, {a_, b_});
  before.AddFact(1, {c_});
  Instance after(&schema_);
  after.AddFact(0, {a_, b_});
  after.AddFact(0, {b_, c_});
  InstanceDiff diff = DiffInstances(before, after);
  ASSERT_EQ(diff.added.size(), 1u);
  ASSERT_EQ(diff.removed.size(), 1u);
  EXPECT_EQ(diff.added[0].relation, 0);
  EXPECT_EQ(diff.removed[0].relation, 1);
  EXPECT_EQ(DiffToString(diff, schema_, symbols_),
            "- U(c).\n+ E(b,c).");
}

TEST_F(InstanceDiffTest, NullsCompareByIdentity) {
  Value n1 = symbols_.FreshNull();
  Value n2 = symbols_.FreshNull();
  Instance before(&schema_);
  before.AddFact(0, {a_, n1});
  Instance after(&schema_);
  after.AddFact(0, {a_, n2});
  InstanceDiff diff = DiffInstances(before, after);
  EXPECT_EQ(diff.added.size(), 1u);
  EXPECT_EQ(diff.removed.size(), 1u);
}

TEST_F(InstanceDiffTest, DiffIsSorted) {
  Instance before(&schema_);
  Instance after(&schema_);
  after.AddFact(0, {c_, a_});
  after.AddFact(0, {a_, c_});
  after.AddFact(1, {b_});
  InstanceDiff diff = DiffInstances(before, after);
  ASSERT_EQ(diff.added.size(), 3u);
  EXPECT_TRUE(diff.added[0] < diff.added[1]);
  EXPECT_TRUE(diff.added[1] < diff.added[2]);
}

}  // namespace
}  // namespace pdx
