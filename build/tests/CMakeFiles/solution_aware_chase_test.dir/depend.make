# Empty dependencies file for solution_aware_chase_test.
# This may be replaced when dependencies are built.
