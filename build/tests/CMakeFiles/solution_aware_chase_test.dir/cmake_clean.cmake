file(REMOVE_RECURSE
  "CMakeFiles/solution_aware_chase_test.dir/solution_aware_chase_test.cc.o"
  "CMakeFiles/solution_aware_chase_test.dir/solution_aware_chase_test.cc.o.d"
  "solution_aware_chase_test"
  "solution_aware_chase_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solution_aware_chase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
