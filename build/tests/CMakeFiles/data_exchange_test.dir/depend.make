# Empty dependencies file for data_exchange_test.
# This may be replaced when dependencies are built.
