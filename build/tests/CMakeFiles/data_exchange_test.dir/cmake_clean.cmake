file(REMOVE_RECURSE
  "CMakeFiles/data_exchange_test.dir/data_exchange_test.cc.o"
  "CMakeFiles/data_exchange_test.dir/data_exchange_test.cc.o.d"
  "data_exchange_test"
  "data_exchange_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_exchange_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
