# Empty dependencies file for setting_file_test.
# This may be replaced when dependencies are built.
