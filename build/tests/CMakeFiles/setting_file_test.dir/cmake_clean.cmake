file(REMOVE_RECURSE
  "CMakeFiles/setting_file_test.dir/setting_file_test.cc.o"
  "CMakeFiles/setting_file_test.dir/setting_file_test.cc.o.d"
  "setting_file_test"
  "setting_file_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setting_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
