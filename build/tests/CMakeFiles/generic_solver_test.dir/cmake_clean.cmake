file(REMOVE_RECURSE
  "CMakeFiles/generic_solver_test.dir/generic_solver_test.cc.o"
  "CMakeFiles/generic_solver_test.dir/generic_solver_test.cc.o.d"
  "generic_solver_test"
  "generic_solver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
