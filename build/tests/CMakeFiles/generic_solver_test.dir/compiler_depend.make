# Empty compiler generated dependencies file for generic_solver_test.
# This may be replaced when dependencies are built.
