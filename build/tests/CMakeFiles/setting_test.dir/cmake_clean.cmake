file(REMOVE_RECURSE
  "CMakeFiles/setting_test.dir/setting_test.cc.o"
  "CMakeFiles/setting_test.dir/setting_test.cc.o.d"
  "setting_test"
  "setting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
