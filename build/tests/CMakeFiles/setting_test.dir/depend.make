# Empty dependencies file for setting_test.
# This may be replaced when dependencies are built.
