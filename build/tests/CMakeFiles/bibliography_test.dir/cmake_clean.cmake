file(REMOVE_RECURSE
  "CMakeFiles/bibliography_test.dir/bibliography_test.cc.o"
  "CMakeFiles/bibliography_test.dir/bibliography_test.cc.o.d"
  "bibliography_test"
  "bibliography_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibliography_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
