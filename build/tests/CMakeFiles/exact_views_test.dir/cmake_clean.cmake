file(REMOVE_RECURSE
  "CMakeFiles/exact_views_test.dir/exact_views_test.cc.o"
  "CMakeFiles/exact_views_test.dir/exact_views_test.cc.o.d"
  "exact_views_test"
  "exact_views_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_views_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
