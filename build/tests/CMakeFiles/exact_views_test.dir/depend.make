# Empty dependencies file for exact_views_test.
# This may be replaced when dependencies are built.
