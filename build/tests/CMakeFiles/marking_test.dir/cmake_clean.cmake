file(REMOVE_RECURSE
  "CMakeFiles/marking_test.dir/marking_test.cc.o"
  "CMakeFiles/marking_test.dir/marking_test.cc.o.d"
  "marking_test"
  "marking_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
