# Empty compiler generated dependencies file for instance_hom_test.
# This may be replaced when dependencies are built.
