file(REMOVE_RECURSE
  "CMakeFiles/instance_hom_test.dir/instance_hom_test.cc.o"
  "CMakeFiles/instance_hom_test.dir/instance_hom_test.cc.o.d"
  "instance_hom_test"
  "instance_hom_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_hom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
