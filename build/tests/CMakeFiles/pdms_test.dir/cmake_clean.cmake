file(REMOVE_RECURSE
  "CMakeFiles/pdms_test.dir/pdms_test.cc.o"
  "CMakeFiles/pdms_test.dir/pdms_test.cc.o.d"
  "pdms_test"
  "pdms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
