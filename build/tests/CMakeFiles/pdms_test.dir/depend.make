# Empty dependencies file for pdms_test.
# This may be replaced when dependencies are built.
