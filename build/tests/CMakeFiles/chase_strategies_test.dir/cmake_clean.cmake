file(REMOVE_RECURSE
  "CMakeFiles/chase_strategies_test.dir/chase_strategies_test.cc.o"
  "CMakeFiles/chase_strategies_test.dir/chase_strategies_test.cc.o.d"
  "chase_strategies_test"
  "chase_strategies_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chase_strategies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
