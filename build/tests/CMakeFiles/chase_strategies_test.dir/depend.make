# Empty dependencies file for chase_strategies_test.
# This may be replaced when dependencies are built.
