file(REMOVE_RECURSE
  "CMakeFiles/instance_io_test.dir/instance_io_test.cc.o"
  "CMakeFiles/instance_io_test.dir/instance_io_test.cc.o.d"
  "instance_io_test"
  "instance_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
