file(REMOVE_RECURSE
  "CMakeFiles/instance_diff_test.dir/instance_diff_test.cc.o"
  "CMakeFiles/instance_diff_test.dir/instance_diff_test.cc.o.d"
  "instance_diff_test"
  "instance_diff_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
