file(REMOVE_RECURSE
  "CMakeFiles/multi_pde_test.dir/multi_pde_test.cc.o"
  "CMakeFiles/multi_pde_test.dir/multi_pde_test.cc.o.d"
  "multi_pde_test"
  "multi_pde_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_pde_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
