# Empty compiler generated dependencies file for multi_pde_test.
# This may be replaced when dependencies are built.
