# Empty compiler generated dependencies file for ctract_solver_test.
# This may be replaced when dependencies are built.
