file(REMOVE_RECURSE
  "CMakeFiles/ctract_solver_test.dir/ctract_solver_test.cc.o"
  "CMakeFiles/ctract_solver_test.dir/ctract_solver_test.cc.o.d"
  "ctract_solver_test"
  "ctract_solver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctract_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
