file(REMOVE_RECURSE
  "CMakeFiles/repairs_test.dir/repairs_test.cc.o"
  "CMakeFiles/repairs_test.dir/repairs_test.cc.o.d"
  "repairs_test"
  "repairs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repairs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
