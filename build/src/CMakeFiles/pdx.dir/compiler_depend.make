# Empty compiler generated dependencies file for pdx.
# This may be replaced when dependencies are built.
