
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/status.cc" "src/CMakeFiles/pdx.dir/base/status.cc.o" "gcc" "src/CMakeFiles/pdx.dir/base/status.cc.o.d"
  "/root/repo/src/base/string_util.cc" "src/CMakeFiles/pdx.dir/base/string_util.cc.o" "gcc" "src/CMakeFiles/pdx.dir/base/string_util.cc.o.d"
  "/root/repo/src/chase/chase.cc" "src/CMakeFiles/pdx.dir/chase/chase.cc.o" "gcc" "src/CMakeFiles/pdx.dir/chase/chase.cc.o.d"
  "/root/repo/src/chase/solution_aware_chase.cc" "src/CMakeFiles/pdx.dir/chase/solution_aware_chase.cc.o" "gcc" "src/CMakeFiles/pdx.dir/chase/solution_aware_chase.cc.o.d"
  "/root/repo/src/hom/core.cc" "src/CMakeFiles/pdx.dir/hom/core.cc.o" "gcc" "src/CMakeFiles/pdx.dir/hom/core.cc.o.d"
  "/root/repo/src/hom/instance_hom.cc" "src/CMakeFiles/pdx.dir/hom/instance_hom.cc.o" "gcc" "src/CMakeFiles/pdx.dir/hom/instance_hom.cc.o.d"
  "/root/repo/src/hom/matcher.cc" "src/CMakeFiles/pdx.dir/hom/matcher.cc.o" "gcc" "src/CMakeFiles/pdx.dir/hom/matcher.cc.o.d"
  "/root/repo/src/logic/atom.cc" "src/CMakeFiles/pdx.dir/logic/atom.cc.o" "gcc" "src/CMakeFiles/pdx.dir/logic/atom.cc.o.d"
  "/root/repo/src/logic/conjunctive_query.cc" "src/CMakeFiles/pdx.dir/logic/conjunctive_query.cc.o" "gcc" "src/CMakeFiles/pdx.dir/logic/conjunctive_query.cc.o.d"
  "/root/repo/src/logic/datalog.cc" "src/CMakeFiles/pdx.dir/logic/datalog.cc.o" "gcc" "src/CMakeFiles/pdx.dir/logic/datalog.cc.o.d"
  "/root/repo/src/logic/dependency.cc" "src/CMakeFiles/pdx.dir/logic/dependency.cc.o" "gcc" "src/CMakeFiles/pdx.dir/logic/dependency.cc.o.d"
  "/root/repo/src/logic/dependency_graph.cc" "src/CMakeFiles/pdx.dir/logic/dependency_graph.cc.o" "gcc" "src/CMakeFiles/pdx.dir/logic/dependency_graph.cc.o.d"
  "/root/repo/src/logic/implication.cc" "src/CMakeFiles/pdx.dir/logic/implication.cc.o" "gcc" "src/CMakeFiles/pdx.dir/logic/implication.cc.o.d"
  "/root/repo/src/logic/marking.cc" "src/CMakeFiles/pdx.dir/logic/marking.cc.o" "gcc" "src/CMakeFiles/pdx.dir/logic/marking.cc.o.d"
  "/root/repo/src/logic/normalize.cc" "src/CMakeFiles/pdx.dir/logic/normalize.cc.o" "gcc" "src/CMakeFiles/pdx.dir/logic/normalize.cc.o.d"
  "/root/repo/src/logic/parser.cc" "src/CMakeFiles/pdx.dir/logic/parser.cc.o" "gcc" "src/CMakeFiles/pdx.dir/logic/parser.cc.o.d"
  "/root/repo/src/pde/analysis.cc" "src/CMakeFiles/pdx.dir/pde/analysis.cc.o" "gcc" "src/CMakeFiles/pdx.dir/pde/analysis.cc.o.d"
  "/root/repo/src/pde/certain_answers.cc" "src/CMakeFiles/pdx.dir/pde/certain_answers.cc.o" "gcc" "src/CMakeFiles/pdx.dir/pde/certain_answers.cc.o.d"
  "/root/repo/src/pde/ctract_solver.cc" "src/CMakeFiles/pdx.dir/pde/ctract_solver.cc.o" "gcc" "src/CMakeFiles/pdx.dir/pde/ctract_solver.cc.o.d"
  "/root/repo/src/pde/data_exchange.cc" "src/CMakeFiles/pdx.dir/pde/data_exchange.cc.o" "gcc" "src/CMakeFiles/pdx.dir/pde/data_exchange.cc.o.d"
  "/root/repo/src/pde/exact_views.cc" "src/CMakeFiles/pdx.dir/pde/exact_views.cc.o" "gcc" "src/CMakeFiles/pdx.dir/pde/exact_views.cc.o.d"
  "/root/repo/src/pde/explain.cc" "src/CMakeFiles/pdx.dir/pde/explain.cc.o" "gcc" "src/CMakeFiles/pdx.dir/pde/explain.cc.o.d"
  "/root/repo/src/pde/generic_solver.cc" "src/CMakeFiles/pdx.dir/pde/generic_solver.cc.o" "gcc" "src/CMakeFiles/pdx.dir/pde/generic_solver.cc.o.d"
  "/root/repo/src/pde/minimize.cc" "src/CMakeFiles/pdx.dir/pde/minimize.cc.o" "gcc" "src/CMakeFiles/pdx.dir/pde/minimize.cc.o.d"
  "/root/repo/src/pde/multi_pde.cc" "src/CMakeFiles/pdx.dir/pde/multi_pde.cc.o" "gcc" "src/CMakeFiles/pdx.dir/pde/multi_pde.cc.o.d"
  "/root/repo/src/pde/pdms.cc" "src/CMakeFiles/pdx.dir/pde/pdms.cc.o" "gcc" "src/CMakeFiles/pdx.dir/pde/pdms.cc.o.d"
  "/root/repo/src/pde/repairs.cc" "src/CMakeFiles/pdx.dir/pde/repairs.cc.o" "gcc" "src/CMakeFiles/pdx.dir/pde/repairs.cc.o.d"
  "/root/repo/src/pde/setting.cc" "src/CMakeFiles/pdx.dir/pde/setting.cc.o" "gcc" "src/CMakeFiles/pdx.dir/pde/setting.cc.o.d"
  "/root/repo/src/pde/setting_file.cc" "src/CMakeFiles/pdx.dir/pde/setting_file.cc.o" "gcc" "src/CMakeFiles/pdx.dir/pde/setting_file.cc.o.d"
  "/root/repo/src/pde/solution.cc" "src/CMakeFiles/pdx.dir/pde/solution.cc.o" "gcc" "src/CMakeFiles/pdx.dir/pde/solution.cc.o.d"
  "/root/repo/src/relational/instance.cc" "src/CMakeFiles/pdx.dir/relational/instance.cc.o" "gcc" "src/CMakeFiles/pdx.dir/relational/instance.cc.o.d"
  "/root/repo/src/relational/instance_diff.cc" "src/CMakeFiles/pdx.dir/relational/instance_diff.cc.o" "gcc" "src/CMakeFiles/pdx.dir/relational/instance_diff.cc.o.d"
  "/root/repo/src/relational/instance_io.cc" "src/CMakeFiles/pdx.dir/relational/instance_io.cc.o" "gcc" "src/CMakeFiles/pdx.dir/relational/instance_io.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/CMakeFiles/pdx.dir/relational/schema.cc.o" "gcc" "src/CMakeFiles/pdx.dir/relational/schema.cc.o.d"
  "/root/repo/src/relational/tuple.cc" "src/CMakeFiles/pdx.dir/relational/tuple.cc.o" "gcc" "src/CMakeFiles/pdx.dir/relational/tuple.cc.o.d"
  "/root/repo/src/relational/value.cc" "src/CMakeFiles/pdx.dir/relational/value.cc.o" "gcc" "src/CMakeFiles/pdx.dir/relational/value.cc.o.d"
  "/root/repo/src/workload/bibliography.cc" "src/CMakeFiles/pdx.dir/workload/bibliography.cc.o" "gcc" "src/CMakeFiles/pdx.dir/workload/bibliography.cc.o.d"
  "/root/repo/src/workload/genomics.cc" "src/CMakeFiles/pdx.dir/workload/genomics.cc.o" "gcc" "src/CMakeFiles/pdx.dir/workload/genomics.cc.o.d"
  "/root/repo/src/workload/graph_gen.cc" "src/CMakeFiles/pdx.dir/workload/graph_gen.cc.o" "gcc" "src/CMakeFiles/pdx.dir/workload/graph_gen.cc.o.d"
  "/root/repo/src/workload/random.cc" "src/CMakeFiles/pdx.dir/workload/random.cc.o" "gcc" "src/CMakeFiles/pdx.dir/workload/random.cc.o.d"
  "/root/repo/src/workload/reductions.cc" "src/CMakeFiles/pdx.dir/workload/reductions.cc.o" "gcc" "src/CMakeFiles/pdx.dir/workload/reductions.cc.o.d"
  "/root/repo/src/workload/setting_gen.cc" "src/CMakeFiles/pdx.dir/workload/setting_gen.cc.o" "gcc" "src/CMakeFiles/pdx.dir/workload/setting_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
