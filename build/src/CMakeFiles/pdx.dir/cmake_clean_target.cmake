file(REMOVE_RECURSE
  "libpdx.a"
)
