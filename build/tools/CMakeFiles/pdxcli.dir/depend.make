# Empty dependencies file for pdxcli.
# This may be replaced when dependencies are built.
