file(REMOVE_RECURSE
  "CMakeFiles/pdxcli.dir/pdxcli.cc.o"
  "CMakeFiles/pdxcli.dir/pdxcli.cc.o.d"
  "pdxcli"
  "pdxcli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdxcli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
