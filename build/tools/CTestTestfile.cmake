# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(pdxcli_check "/root/repo/build/tools/pdxcli" "check" "--setting" "/root/repo/data/example1.pdx")
set_tests_properties(pdxcli_check PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(pdxcli_solve_triangle "/root/repo/build/tools/pdxcli" "solve" "--setting" "/root/repo/data/example1.pdx" "--source" "/root/repo/data/example1_triangle.facts")
set_tests_properties(pdxcli_solve_triangle PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(pdxcli_solve_genomics "/root/repo/build/tools/pdxcli" "solve" "--setting" "/root/repo/data/genomics.pdx" "--source" "/root/repo/data/genomics_source.facts" "--target" "/root/repo/data/genomics_target.facts" "--minimize")
set_tests_properties(pdxcli_solve_genomics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(pdxcli_certain "/root/repo/build/tools/pdxcli" "certain" "--setting" "/root/repo/data/example1.pdx" "--source" "/root/repo/data/example1_triangle.facts" "--query" "q(x,y) :- H(x,y).")
set_tests_properties(pdxcli_certain PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(pdxcli_chase "/root/repo/build/tools/pdxcli" "chase" "--setting" "/root/repo/data/example1.pdx" "--source" "/root/repo/data/example1_path.facts")
set_tests_properties(pdxcli_chase PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(pdxcli_repairs "/root/repo/build/tools/pdxcli" "repairs" "--setting" "/root/repo/data/example1.pdx" "--source" "/root/repo/data/example1_path.facts" "--target" "/root/repo/data/example1_bad_target.facts")
set_tests_properties(pdxcli_repairs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(pdxcli_explain "/root/repo/build/tools/pdxcli" "explain" "--setting" "/root/repo/data/example1.pdx" "--source" "/root/repo/data/example1_path.facts")
set_tests_properties(pdxcli_explain PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(pdxcli_solve_diff "/root/repo/build/tools/pdxcli" "solve" "--setting" "/root/repo/data/genomics.pdx" "--source" "/root/repo/data/genomics_source.facts" "--target" "/root/repo/data/genomics_target.facts" "--diff")
set_tests_properties(pdxcli_solve_diff PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")
