file(REMOVE_RECURSE
  "CMakeFiles/bench_nphard.dir/bench_nphard.cc.o"
  "CMakeFiles/bench_nphard.dir/bench_nphard.cc.o.d"
  "bench_nphard"
  "bench_nphard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nphard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
