file(REMOVE_RECURSE
  "CMakeFiles/bench_hom.dir/bench_hom.cc.o"
  "CMakeFiles/bench_hom.dir/bench_hom.cc.o.d"
  "bench_hom"
  "bench_hom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
