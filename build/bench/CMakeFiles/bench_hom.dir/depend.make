# Empty dependencies file for bench_hom.
# This may be replaced when dependencies are built.
