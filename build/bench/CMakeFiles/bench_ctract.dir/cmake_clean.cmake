file(REMOVE_RECURSE
  "CMakeFiles/bench_ctract.dir/bench_ctract.cc.o"
  "CMakeFiles/bench_ctract.dir/bench_ctract.cc.o.d"
  "bench_ctract"
  "bench_ctract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ctract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
