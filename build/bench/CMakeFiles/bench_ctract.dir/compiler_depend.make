# Empty compiler generated dependencies file for bench_ctract.
# This may be replaced when dependencies are built.
