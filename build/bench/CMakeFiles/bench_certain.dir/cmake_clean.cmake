file(REMOVE_RECURSE
  "CMakeFiles/bench_certain.dir/bench_certain.cc.o"
  "CMakeFiles/bench_certain.dir/bench_certain.cc.o.d"
  "bench_certain"
  "bench_certain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_certain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
