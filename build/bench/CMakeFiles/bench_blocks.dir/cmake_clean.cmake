file(REMOVE_RECURSE
  "CMakeFiles/bench_blocks.dir/bench_blocks.cc.o"
  "CMakeFiles/bench_blocks.dir/bench_blocks.cc.o.d"
  "bench_blocks"
  "bench_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
