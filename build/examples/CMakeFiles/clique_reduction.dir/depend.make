# Empty dependencies file for clique_reduction.
# This may be replaced when dependencies are built.
