# Empty compiler generated dependencies file for bibliography_peers.
# This may be replaced when dependencies are built.
