file(REMOVE_RECURSE
  "CMakeFiles/bibliography_peers.dir/bibliography_peers.cpp.o"
  "CMakeFiles/bibliography_peers.dir/bibliography_peers.cpp.o.d"
  "bibliography_peers"
  "bibliography_peers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibliography_peers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
