# Empty compiler generated dependencies file for repair_semantics.
# This may be replaced when dependencies are built.
