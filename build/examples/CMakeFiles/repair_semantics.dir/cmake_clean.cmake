file(REMOVE_RECURSE
  "CMakeFiles/repair_semantics.dir/repair_semantics.cpp.o"
  "CMakeFiles/repair_semantics.dir/repair_semantics.cpp.o.d"
  "repair_semantics"
  "repair_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
