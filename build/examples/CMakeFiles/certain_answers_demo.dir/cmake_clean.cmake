file(REMOVE_RECURSE
  "CMakeFiles/certain_answers_demo.dir/certain_answers_demo.cpp.o"
  "CMakeFiles/certain_answers_demo.dir/certain_answers_demo.cpp.o.d"
  "certain_answers_demo"
  "certain_answers_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certain_answers_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
