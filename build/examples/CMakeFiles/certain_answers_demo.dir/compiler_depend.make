# Empty compiler generated dependencies file for certain_answers_demo.
# This may be replaced when dependencies are built.
