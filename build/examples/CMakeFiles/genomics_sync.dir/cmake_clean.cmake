file(REMOVE_RECURSE
  "CMakeFiles/genomics_sync.dir/genomics_sync.cpp.o"
  "CMakeFiles/genomics_sync.dir/genomics_sync.cpp.o.d"
  "genomics_sync"
  "genomics_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genomics_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
