# Empty compiler generated dependencies file for genomics_sync.
# This may be replaced when dependencies are built.
