file(REMOVE_RECURSE
  "CMakeFiles/tractability_boundary.dir/tractability_boundary.cpp.o"
  "CMakeFiles/tractability_boundary.dir/tractability_boundary.cpp.o.d"
  "tractability_boundary"
  "tractability_boundary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tractability_boundary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
