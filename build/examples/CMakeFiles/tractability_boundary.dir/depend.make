# Empty dependencies file for tractability_boundary.
# This may be replaced when dependencies are built.
