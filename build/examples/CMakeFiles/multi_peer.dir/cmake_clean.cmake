file(REMOVE_RECURSE
  "CMakeFiles/multi_peer.dir/multi_peer.cpp.o"
  "CMakeFiles/multi_peer.dir/multi_peer.cpp.o.d"
  "multi_peer"
  "multi_peer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_peer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
