# Empty compiler generated dependencies file for multi_peer.
# This may be replaced when dependencies are built.
