# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_genomics_sync "/root/repo/build/examples/genomics_sync")
set_tests_properties(example_genomics_sync PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_clique_reduction "/root/repo/build/examples/clique_reduction")
set_tests_properties(example_clique_reduction PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_certain_answers_demo "/root/repo/build/examples/certain_answers_demo")
set_tests_properties(example_certain_answers_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_peer "/root/repo/build/examples/multi_peer")
set_tests_properties(example_multi_peer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_repair_semantics "/root/repo/build/examples/repair_semantics")
set_tests_properties(example_repair_semantics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tractability_boundary "/root/repo/build/examples/tractability_boundary")
set_tests_properties(example_tractability_boundary PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bibliography_peers "/root/repo/build/examples/bibliography_peers")
set_tests_properties(example_bibliography_peers PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
