// pdxcli — command-line driver for the pdx peer data exchange engine.
//
// Usage:
//   pdxcli check   --setting FILE
//   pdxcli chase   --setting FILE --source FILE [--target FILE] [--threads N]
//                  [--schedule barrier|speculative|dag] [--speculative]
//                  [--dump-plans] [--repeat N]
//   pdxcli solve   --setting FILE --source FILE [--target FILE]
//                  [--solver auto|ctract|generic] [--minimize] [--diff]
//                  [--threads N]
//   pdxcli certain --setting FILE --source FILE [--target FILE]
//                  --query 'q(x) :- H(x,y).' [--threads N]
//   pdxcli repairs --setting FILE --source FILE --target FILE
//   pdxcli explain --setting FILE --source FILE [--target FILE]
//
// Every command also accepts --metrics-out FILE and --trace-out FILE
// ("-" = stdout): the former dumps the metrics registry in Prometheus text
// format after the run, the latter enables span tracing for the run's
// duration and writes Chrome trace_event JSON (load it in chrome://tracing
// or https://ui.perfetto.dev).
//
// Setting files use the [source]/[target]/[st]/[ts]/[t] format of
// pde/setting_file.h; instance files hold facts like "E(a,b).".

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "base/string_util.h"
#include "chase/chase.h"
#include "plan/compiler.h"
#include "hom/core.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "logic/parser.h"
#include "pde/analysis.h"
#include "pde/explain.h"
#include "pde/certain_answers.h"
#include "pde/ctract_solver.h"
#include "pde/data_exchange.h"
#include "pde/generic_solver.h"
#include "pde/minimize.h"
#include "pde/pdms.h"
#include "pde/repairs.h"
#include "relational/instance_diff.h"
#include "pde/setting_file.h"
#include "pde/solution.h"

namespace pdx {
namespace {

struct CliArgs {
  std::string command;
  std::map<std::string, std::string> flags;
};

StatusOr<CliArgs> ParseArgs(int argc, char** argv) {
  if (argc < 2) {
    return InvalidArgumentError("missing command");
  }
  CliArgs args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag.rfind("--", 0) != 0) {
      return InvalidArgumentError(StrCat("expected --flag, got ", flag));
    }
    flag = flag.substr(2);
    if (flag == "minimize" || flag == "core" || flag == "diff" ||
        flag == "speculative" || flag == "dump-plans") {
      args.flags[flag] = "true";
      continue;
    }
    if (i + 1 >= argc) {
      return InvalidArgumentError(StrCat("flag --", flag, " needs a value"));
    }
    args.flags[flag] = argv[++i];
  }
  return args;
}

// --metrics-out / --trace-out plumbing, applied uniformly to every
// command: tracing is switched on before the command body runs and the
// exports are written on the way out — also after failed runs, when the
// partial metrics are exactly what one wants to look at.
class ObsExports {
 public:
  explicit ObsExports(const CliArgs& args) {
    if (auto it = args.flags.find("metrics-out"); it != args.flags.end()) {
      metrics_path_ = it->second;
    }
    if (auto it = args.flags.find("trace-out"); it != args.flags.end()) {
      trace_path_ = it->second;
      // rusage=true: per-span thread CPU / context-switch deltas, so
      // shard skew in the trace distinguishes work imbalance from
      // scheduler preemption.
      obs::Tracer::Global().Enable(/*capacity=*/1 << 16, /*rusage=*/true);
    }
  }

  // Writes the requested exports; returns 1 if any write failed.
  int Write() {
    int rc = 0;
    if (!metrics_path_.empty()) {
      Status status = obs::WriteFileOrStdout(
          metrics_path_,
          obs::ExportPrometheus(obs::MetricsRegistry::Global().Snapshot()));
      if (!status.ok()) {
        std::cerr << status.ToString() << "\n";
        rc = 1;
      }
    }
    if (!trace_path_.empty()) {
      std::vector<obs::SpanRecord> spans = obs::Tracer::Global().Drain();
      uint64_t dropped = obs::Tracer::Global().dropped();
      obs::Tracer::Global().Disable();
      if (dropped > 0) {
        std::cerr << "warning: trace ring overflowed, " << dropped
                  << " span(s) dropped\n";
      }
      Status status =
          obs::WriteFileOrStdout(trace_path_, obs::ExportChromeTrace(spans));
      if (!status.ok()) {
        std::cerr << status.ToString() << "\n";
        rc = 1;
      }
    }
    return rc;
  }

 private:
  std::string metrics_path_;
  std::string trace_path_;
};

int ParseThreads(const CliArgs& args) {
  auto it = args.flags.find("threads");
  return it == args.flags.end() ? 1 : std::atoi(it->second.c_str());
}

// --schedule barrier|speculative|dag: the tgd-phase schedule for parallel
// chases (see ChaseSchedule in chase/chase.h). Absent means barrier, the
// bit-deterministic default; --speculative stays as shorthand for the
// speculative schedule.
StatusOr<ChaseSchedule> ParseSchedule(const CliArgs& args) {
  auto it = args.flags.find("schedule");
  if (it == args.flags.end()) return ChaseSchedule::kBarrier;
  if (it->second == "barrier") return ChaseSchedule::kBarrier;
  if (it->second == "speculative") return ChaseSchedule::kSpeculative;
  if (it->second == "dag") return ChaseSchedule::kDag;
  return InvalidArgumentError(StrCat("unknown --schedule ", it->second,
                                     " (want barrier, speculative or dag)"));
}

StatusOr<PdeSetting> LoadSetting(const CliArgs& args, SymbolTable* symbols) {
  auto it = args.flags.find("setting");
  if (it == args.flags.end()) {
    return InvalidArgumentError("--setting FILE is required");
  }
  return LoadSettingFile(it->second, symbols);
}

StatusOr<Instance> LoadSide(const CliArgs& args, const char* flag,
                            const PdeSetting& setting, SymbolTable* symbols,
                            bool required) {
  auto it = args.flags.find(flag);
  if (it == args.flags.end()) {
    if (required) {
      return InvalidArgumentError(StrCat("--", flag, " FILE is required"));
    }
    return setting.EmptyInstance();
  }
  return LoadInstanceFile(it->second, setting.schema(), symbols);
}

int RunCheck(const CliArgs& args) {
  SymbolTable symbols;
  auto setting = LoadSetting(args, &symbols);
  if (!setting.ok()) {
    std::cerr << setting.status().ToString() << "\n";
    return 1;
  }
  std::cout << setting->ToString(symbols) << "\n\n";
  std::cout << "data exchange (Σ_ts empty): "
            << (setting->IsDataExchange() ? "yes" : "no") << "\n";
  std::cout << "target constraints: "
            << (setting->HasTargetConstraints() ? "yes" : "no")
            << " (tgds weakly acyclic: "
            << (setting->TargetTgdsWeaklyAcyclic() ? "yes" : "no") << ")\n";
  const CtractReport& report = setting->ctract_report();
  std::cout << "Definition 9: condition 1 " << (report.condition1 ? "✓" : "✗")
            << ", condition 2.1 " << (report.condition2_1 ? "✓" : "✗")
            << ", condition 2.2 " << (report.condition2_2 ? "✓" : "✗")
            << "\n";
  std::cout << "in C_tract (PTIME ExistsSolution guaranteed): "
            << (setting->InCtract() ? "yes" : "no") << "\n";
  for (const std::string& violation : report.violations) {
    std::cout << "  " << violation << "\n";
  }
  SettingAnalysis analysis = AnalyzeSetting(*setting, &symbols);
  std::cout << "chase growth (Σst ∪ Σt): "
            << (analysis.generating_sets_weakly_acyclic
                    ? StrCat("weakly acyclic, max rank ", analysis.max_rank)
                    : "not weakly acyclic")
            << "\n";
  if (analysis.implication_available) {
    if (analysis.redundant_dependencies.empty()) {
      std::cout << "no redundant dependencies\n";
    } else {
      std::cout << "redundant dependencies:\n";
      for (const std::string& note : analysis.redundant_dependencies) {
        std::cout << "  " << note << "\n";
      }
    }
  } else {
    std::cout << "(redundancy analysis unavailable: the combined tgd set is "
                 "not weakly acyclic or uses disjunction)\n";
  }
  std::cout << "\nPDMS view (Section 2):\n"
            << BuildPdms(*setting, symbols).ToString() << "\n";
  return 0;
}

int RunChase(const CliArgs& args) {
  SymbolTable symbols;
  auto setting = LoadSetting(args, &symbols);
  if (!setting.ok()) {
    std::cerr << setting.status().ToString() << "\n";
    return 1;
  }
  auto source = LoadSide(args, "source", *setting, &symbols, true);
  auto target = LoadSide(args, "target", *setting, &symbols, false);
  if (!source.ok() || !target.ok()) {
    std::cerr << (source.ok() ? target.status() : source.status()).ToString()
              << "\n";
    return 1;
  }
  Instance combined = setting->CombineInstances(*source, *target);
  ChaseOptions chase_options;
  chase_options.num_threads = ParseThreads(args);
  chase_options.speculative = args.flags.count("speculative") > 0;
  auto schedule = ParseSchedule(args);
  if (!schedule.ok()) {
    std::cerr << schedule.status().ToString() << "\n";
    return 2;
  }
  chase_options.schedule = *schedule;
  if (args.flags.count("dump-plans") > 0) {
    // Show exactly what the chase below will execute: the compiled plans
    // for Σ_st (this command chases with Σ_st only, no egds).
    auto compiled = plan::CompileSetting(setting->st_tgds(), {});
    std::cout << plan::DumpPlans(*compiled, setting->st_tgds(), {},
                                 setting->schema(), symbols)
              << "\n";
  }
  int repeat = 1;
  if (auto it = args.flags.find("repeat"); it != args.flags.end()) {
    repeat = std::atoi(it->second.c_str());
    if (repeat < 1) {
      std::cerr << "--repeat needs a positive count\n";
      return 2;
    }
  }
  // With --repeat N the same chase runs N times and the wall-time
  // min/median are reported: min is the least-noise estimate, the median
  // shows how contended the box was. Output facts come from the last run
  // (every run chases the same input, so they agree).
  std::vector<double> wall_ms;
  wall_ms.reserve(static_cast<size_t>(repeat));
  std::optional<ChaseResult> chased;
  for (int rep = 0; rep < repeat; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    ChaseResult result =
        Chase(combined, setting->st_tgds(), {}, &symbols, chase_options);
    auto t1 = std::chrono::steady_clock::now();
    if (result.outcome != ChaseOutcome::kSuccess) {
      std::cerr << "chase did not complete: " << result.failure << "\n";
      return 1;
    }
    wall_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    chased = std::move(result);
  }
  if (repeat > 1) {
    std::sort(wall_ms.begin(), wall_ms.end());
    std::cout << "# chase wall over " << repeat << " runs: min "
              << wall_ms.front() << " ms, median "
              << wall_ms[wall_ms.size() / 2] << " ms\n";
  }
  std::cout << "# J_can = chase of (I, J) with Σ_st (" << chased->steps
            << " steps, " << chased->nulls_created << " nulls)\n"
            << setting->TargetPart(chased->instance).ToString(symbols) << "\n";
  return 0;
}

int RunSolve(const CliArgs& args) {
  SymbolTable symbols;
  auto setting = LoadSetting(args, &symbols);
  if (!setting.ok()) {
    std::cerr << setting.status().ToString() << "\n";
    return 1;
  }
  auto source = LoadSide(args, "source", *setting, &symbols, true);
  auto target = LoadSide(args, "target", *setting, &symbols, false);
  if (!source.ok() || !target.ok()) {
    std::cerr << (source.ok() ? target.status() : source.status()).ToString()
              << "\n";
    return 1;
  }
  std::string solver = "auto";
  if (auto it = args.flags.find("solver"); it != args.flags.end()) {
    solver = it->second;
  }
  bool use_ctract;
  if (solver == "ctract") {
    use_ctract = true;
  } else if (solver == "generic") {
    use_ctract = false;
  } else if (solver == "auto") {
    // The Figure 3 algorithm is correct whenever condition 1 holds and
    // there are no target constraints; otherwise fall back to the search.
    use_ctract = !setting->HasTargetConstraints() &&
                 !setting->HasDisjunctiveTsTgds() &&
                 setting->ctract_report().theorem5_applicable();
  } else {
    std::cerr << "unknown --solver " << solver << "\n";
    return 2;
  }

  bool has_solution = false;
  std::optional<Instance> solution;
  if (use_ctract) {
    ChaseOptions chase_options;
    chase_options.num_threads = ParseThreads(args);
    auto result = CtractExistsSolution(*setting, *source, *target, &symbols,
                                       chase_options);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    has_solution = result->has_solution;
    solution = std::move(result->solution);
    std::cout << "# solver: ExistsSolution (Figure 3), blocks="
              << result->block_count
              << " max-block-nulls=" << result->max_block_nulls << "\n";
  } else {
    GenericSolverOptions solver_options;
    solver_options.num_threads = ParseThreads(args);
    auto result = GenericExistsSolution(*setting, *source, *target, &symbols,
                                        solver_options);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    if (result->outcome == SolveOutcome::kBudgetExhausted) {
      std::cerr << "search budget exhausted; result unknown\n";
      return 3;
    }
    has_solution = result->outcome == SolveOutcome::kSolutionFound;
    solution = std::move(result->solution);
    std::cout << "# solver: generic search, nodes="
              << result->nodes_explored << "\n";
  }

  if (!has_solution) {
    std::cout << "no solution\n";
    // Explain: which constraints fail if J is left as-is.
    SolutionCheck check =
        CheckSolution(*setting, *source, *target, *target, symbols);
    for (const std::string& violation : check.violations) {
      std::cout << "# " << violation << "\n";
    }
    return 0;
  }
  if (args.flags.count("core") > 0) {
    // The core of a solution is a solution (homomorphisms preserve all
    // constraints of Definition 2), with redundant null facts folded away.
    solution = ComputeCore(*solution);
  }
  if (args.flags.count("minimize") > 0) {
    auto minimized =
        MinimizeSolution(*setting, *source, *target, *solution, symbols);
    if (minimized.ok()) solution = std::move(minimized).value();
  }
  if (args.flags.count("diff") > 0) {
    InstanceDiff diff = DiffInstances(*target, *solution);
    std::cout << "exchange diff (solution vs J, "
              << diff.added.size() << " imported):\n"
              << DiffToString(diff, setting->schema(), symbols) << "\n";
    return 0;
  }
  std::cout << "solution (" << solution->fact_count() << " facts):\n"
            << solution->ToString(symbols) << "\n";
  return 0;
}

int RunCertain(const CliArgs& args) {
  SymbolTable symbols;
  auto setting = LoadSetting(args, &symbols);
  if (!setting.ok()) {
    std::cerr << setting.status().ToString() << "\n";
    return 1;
  }
  auto source = LoadSide(args, "source", *setting, &symbols, true);
  auto target = LoadSide(args, "target", *setting, &symbols, false);
  if (!source.ok() || !target.ok()) {
    std::cerr << (source.ok() ? target.status() : source.status()).ToString()
              << "\n";
    return 1;
  }
  auto query_it = args.flags.find("query");
  if (query_it == args.flags.end()) {
    std::cerr << "--query 'q(x) :- ...' is required\n";
    return 2;
  }
  auto query =
      ParseUnionQuery(query_it->second, setting->schema(), &symbols);
  if (!query.ok()) {
    std::cerr << query.status().ToString() << "\n";
    return 1;
  }
  GenericSolverOptions solver_options;
  solver_options.num_threads = ParseThreads(args);
  auto result = ComputeCertainAnswers(*setting, *source, *target, *query,
                                      &symbols, solver_options);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  if (result->no_solution) {
    std::cout << "# no solution exists; certainty is vacuous\n";
  }
  if (query->IsBoolean()) {
    std::cout << "certain(q) = " << (result->boolean_value ? "true" : "false")
              << "\n";
  } else {
    std::cout << "# " << result->answers.size() << " certain answers\n";
    for (const Tuple& t : result->answers) {
      std::cout << TupleToString(t, symbols) << "\n";
    }
  }
  return 0;
}

int RunRepairs(const CliArgs& args) {
  SymbolTable symbols;
  auto setting = LoadSetting(args, &symbols);
  if (!setting.ok()) {
    std::cerr << setting.status().ToString() << "\n";
    return 1;
  }
  auto source = LoadSide(args, "source", *setting, &symbols, true);
  auto target = LoadSide(args, "target", *setting, &symbols, true);
  if (!source.ok() || !target.ok()) {
    std::cerr << (source.ok() ? target.status() : source.status()).ToString()
              << "\n";
    return 1;
  }
  auto repairs = ComputeSubsetRepairs(*setting, *source, *target, &symbols);
  if (!repairs.ok()) {
    std::cerr << repairs.status().ToString() << "\n";
    return 1;
  }
  if (repairs->size() == 1 && (*repairs)[0].FactsEqual(*target)) {
    std::cout << "# (I, J) is solvable; J is its own unique repair\n";
  }
  std::cout << "# " << repairs->size() << " subset repair(s)\n";
  for (size_t i = 0; i < repairs->size(); ++i) {
    std::cout << "# repair " << i + 1 << " (" << (*repairs)[i].fact_count()
              << " facts)\n"
              << (*repairs)[i].ToString(symbols) << "\n";
  }
  return 0;
}

int RunExplain(const CliArgs& args) {
  SymbolTable symbols;
  auto setting = LoadSetting(args, &symbols);
  if (!setting.ok()) {
    std::cerr << setting.status().ToString() << "\n";
    return 1;
  }
  auto source = LoadSide(args, "source", *setting, &symbols, true);
  auto target = LoadSide(args, "target", *setting, &symbols, false);
  if (!source.ok() || !target.ok()) {
    std::cerr << (source.ok() ? target.status() : source.status()).ToString()
              << "\n";
    return 1;
  }
  // Prefer the target-side explanation; fall back to the source side when
  // the conflict does not involve J at all.
  auto target_conflict =
      FindMinimalTargetConflict(*setting, *source, *target, &symbols);
  if (target_conflict.ok()) {
    std::cout << "# minimal conflicting subset of J ("
              << target_conflict->fact_count() << " facts):\n"
              << target_conflict->ToString(symbols) << "\n";
    return 0;
  }
  auto source_conflict =
      FindMinimalSourceConflict(*setting, *source, *target, &symbols);
  if (source_conflict.ok()) {
    std::cout << "# the conflict is source-side; minimal conflicting subset "
                 "of I ("
              << source_conflict->fact_count() << " facts):\n"
              << source_conflict->ToString(symbols) << "\n";
    return 0;
  }
  std::cerr << source_conflict.status().ToString()
            << " (is (I, J) actually unsolvable?)\n";
  return 1;
}

int Dispatch(const CliArgs& args) {
  if (args.command == "check") return RunCheck(args);
  if (args.command == "chase") return RunChase(args);
  if (args.command == "solve") return RunSolve(args);
  if (args.command == "certain") return RunCertain(args);
  if (args.command == "repairs") return RunRepairs(args);
  if (args.command == "explain") return RunExplain(args);
  std::cerr << "unknown command " << args.command << "\n";
  return 2;
}

int Main(int argc, char** argv) {
  auto args = ParseArgs(argc, argv);
  if (!args.ok()) {
    std::cerr << args.status().ToString() << "\n"
              << "usage: pdxcli check|chase|solve|certain|repairs|explain "
                 "--setting FILE [--source FILE] [--target FILE] "
                 "[--solver auto|ctract|generic] [--query Q] "
                 "[--minimize] [--diff] [--threads N] "
                 "[--schedule barrier|speculative|dag] [--speculative] "
                 "[--dump-plans] [--repeat N] "
                 "[--metrics-out FILE] [--trace-out FILE]\n";
    return 2;
  }
  ObsExports exports(*args);
  int rc = Dispatch(*args);
  int export_rc = exports.Write();
  return rc != 0 ? rc : export_rc;
}

}  // namespace
}  // namespace pdx

int main(int argc, char** argv) { return pdx::Main(argc, argv); }
