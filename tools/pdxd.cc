// pdxd — the PDE-as-a-service daemon.
//
// Serves peer data exchange settings over a line-delimited JSON protocol
// (see serve/protocol.h) with snapshot-isolated reads and a single-writer
// batched chase per tenant, plus an optional Prometheus /metrics HTTP
// endpoint.
//
// Usage:
//   pdxd --listen unix:/tmp/pdxd.sock [--metrics tcp:127.0.0.1:9464]
//        [--threads N] [--chase-threads N] [--max-chase-steps N]
//        [--max-solver-nodes N] [--deadline-ms MS] [--setting FILE]...
//
// --listen / --metrics take "unix:PATH" or "tcp:HOST:PORT" (TCP port 0
// lets the kernel pick; the resolved address is printed on stdout as
// "listening <addr>" / "metrics <addr>" so scripts can scrape it).
// --setting preloads a tenant at startup; repeatable.
//
// The daemon exits on SIGINT/SIGTERM or a `shutdown` request, after a
// graceful drain: in-flight requests finish, admitted writes publish.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/string_util.h"
#include "serve/server.h"

namespace pdx {
namespace serve {
namespace {

std::atomic<bool> g_interrupted{false};

void HandleSignal(int) { g_interrupted.store(true, std::memory_order_relaxed); }

StatusOr<std::string> ReadFileText(const std::string& path) {
  std::ifstream file(path);
  if (!file) return NotFoundError(StrCat("cannot open ", path));
  std::ostringstream text;
  text << file.rdbuf();
  return std::move(text).str();
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --listen unix:PATH|tcp:HOST:PORT\n"
      "          [--metrics unix:PATH|tcp:HOST:PORT] [--threads N]\n"
      "          [--chase-threads N] [--max-chase-steps N]\n"
      "          [--max-solver-nodes N] [--deadline-ms MS]\n"
      "          [--setting FILE]...\n",
      argv0);
  return 2;
}

int Main(int argc, char** argv) {
  ServerOptions options;
  std::vector<std::string> preload;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--listen" && (v = value())) {
      options.address = v;
    } else if (flag == "--metrics" && (v = value())) {
      options.metrics_address = v;
    } else if (flag == "--threads" && (v = value())) {
      options.worker_threads = std::atoi(v);
    } else if (flag == "--chase-threads" && (v = value())) {
      options.tenant.chase_threads = std::atoi(v);
    } else if (flag == "--max-chase-steps" && (v = value())) {
      options.tenant.max_chase_steps = std::atoll(v);
    } else if (flag == "--max-solver-nodes" && (v = value())) {
      options.tenant.max_solver_nodes = std::atoll(v);
    } else if (flag == "--deadline-ms" && (v = value())) {
      options.protocol.default_deadline_ms = std::atoll(v);
    } else if (flag == "--setting" && (v = value())) {
      preload.push_back(v);
    } else {
      std::fprintf(stderr, "pdxd: bad flag %s\n", flag.c_str());
      return Usage(argv[0]);
    }
  }
  if (options.address.empty()) {
    std::fprintf(stderr, "pdxd: --listen is required\n");
    return Usage(argv[0]);
  }

  auto server = Server::Start(options);
  if (!server.ok()) {
    std::fprintf(stderr, "pdxd: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }

  for (const std::string& path : preload) {
    auto text = ReadFileText(path);
    if (!text.ok()) {
      std::fprintf(stderr, "pdxd: %s\n", text.status().ToString().c_str());
      return 1;
    }
    auto tenant = (*server)->registry().Load(*text);
    if (!tenant.ok()) {
      std::fprintf(stderr, "pdxd: %s: %s\n", path.c_str(),
                   tenant.status().ToString().c_str());
      return 1;
    }
    std::printf("loaded %s as tenant %s\n", path.c_str(),
                (*tenant)->id().c_str());
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::printf("listening %s\n", (*server)->address().c_str());
  if (!(*server)->metrics_address().empty()) {
    std::printf("metrics %s\n", (*server)->metrics_address().c_str());
  }
  std::fflush(stdout);

  // Park until a shutdown request (protocol verb) or a signal; the drain
  // itself must run on this thread, not a connection handler's.
  while (!(*server)->WaitForShutdownRequest(std::chrono::milliseconds(200))) {
    if (g_interrupted.load(std::memory_order_relaxed)) break;
  }
  std::fprintf(stderr, "pdxd: draining\n");
  (*server)->Shutdown();
  std::fprintf(stderr, "pdxd: bye\n");
  return 0;
}

}  // namespace
}  // namespace serve
}  // namespace pdx

int main(int argc, char** argv) { return pdx::serve::Main(argc, argv); }
