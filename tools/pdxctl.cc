// pdxctl — command-line client for a running pdxd.
//
// Usage:
//   pdxctl call   --addr unix:/tmp/pdxd.sock --json '{"verb":"ping"}'
//   pdxctl call   --addr ... --json -          (read request lines from stdin,
//                                               one response line per request)
//   pdxctl load   --addr ... --setting FILE [--facts FILE]
//   pdxctl scrape --addr tcp:127.0.0.1:9464 [--path /metrics]
//
// `call` prints the raw response line(s); the exit code is nonzero when a
// response carries "ok": false, so shell scripts can assert on outcomes.
// `load` is sugar for a `load` call with the setting (and optional facts)
// read from files. `scrape` fetches the Prometheus endpoint body.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "base/string_util.h"
#include "serve/client.h"

namespace pdx {
namespace serve {
namespace {

StatusOr<std::string> ReadFileText(const std::string& path) {
  std::ifstream file(path);
  if (!file) return NotFoundError(StrCat("cannot open ", path));
  std::ostringstream text;
  text << file.rdbuf();
  return std::move(text).str();
}

int Usage() {
  std::fprintf(stderr,
               "usage: pdxctl call   --addr ADDR --json REQUEST|-\n"
               "       pdxctl load   --addr ADDR --setting FILE "
               "[--facts FILE]\n"
               "       pdxctl scrape --addr ADDR [--path /metrics]\n");
  return 2;
}

// Prints the response line; false when it carries ok=false (or is
// unparseable, which a correct daemon never sends).
bool PrintResponse(const JsonValue& response) {
  std::printf("%s\n", response.Dump().c_str());
  return response.GetBool("ok");
}

int RunCall(Client& client, const std::string& json) {
  bool all_ok = true;
  if (json == "-") {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      auto response = client.CallRaw(line);
      if (!response.ok()) {
        std::fprintf(stderr, "pdxctl: %s\n",
                     response.status().ToString().c_str());
        return 1;
      }
      all_ok &= PrintResponse(*response);
    }
  } else {
    auto response = client.CallRaw(json);
    if (!response.ok()) {
      std::fprintf(stderr, "pdxctl: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    all_ok = PrintResponse(*response);
  }
  return all_ok ? 0 : 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  std::string addr, json, setting, facts, path = "/metrics";
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    const char* v = i + 1 < argc ? argv[i + 1] : nullptr;
    if (flag == "--addr" && v) {
      addr = v, ++i;
    } else if (flag == "--json" && v) {
      json = v, ++i;
    } else if (flag == "--setting" && v) {
      setting = v, ++i;
    } else if (flag == "--facts" && v) {
      facts = v, ++i;
    } else if (flag == "--path" && v) {
      path = v, ++i;
    } else {
      std::fprintf(stderr, "pdxctl: bad flag %s\n", flag.c_str());
      return Usage();
    }
  }
  if (addr.empty()) {
    std::fprintf(stderr, "pdxctl: --addr is required\n");
    return Usage();
  }

  if (command == "scrape") {
    auto body = HttpGet(addr, path);
    if (!body.ok()) {
      std::fprintf(stderr, "pdxctl: %s\n", body.status().ToString().c_str());
      return 1;
    }
    std::fputs(body->c_str(), stdout);
    return 0;
  }

  auto client = Client::Connect(addr);
  if (!client.ok()) {
    std::fprintf(stderr, "pdxctl: %s\n", client.status().ToString().c_str());
    return 1;
  }

  if (command == "call") {
    if (json.empty()) return Usage();
    return RunCall(*client, json);
  }

  if (command == "load") {
    if (setting.empty()) return Usage();
    auto setting_text = ReadFileText(setting);
    if (!setting_text.ok()) {
      std::fprintf(stderr, "pdxctl: %s\n",
                   setting_text.status().ToString().c_str());
      return 1;
    }
    JsonValue request = JsonValue::Object();
    request.Set("verb", JsonValue::String("load"));
    request.Set("setting", JsonValue::String(*setting_text));
    if (!facts.empty()) {
      auto facts_text = ReadFileText(facts);
      if (!facts_text.ok()) {
        std::fprintf(stderr, "pdxctl: %s\n",
                     facts_text.status().ToString().c_str());
        return 1;
      }
      request.Set("facts", JsonValue::String(*facts_text));
    }
    auto response = client->Call(request);
    if (!response.ok()) {
      std::fprintf(stderr, "pdxctl: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    return PrintResponse(*response) ? 0 : 1;
  }

  std::fprintf(stderr, "pdxctl: unknown command %s\n", command.c_str());
  return Usage();
}

}  // namespace
}  // namespace serve
}  // namespace pdx

int main(int argc, char** argv) { return pdx::serve::Main(argc, argv); }
