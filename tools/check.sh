#!/usr/bin/env bash
# Tier-1 verification: configure, build and run the tier-1 test suite
# (`ctest -L tier1`), first plain, then under AddressSanitizer + UBSan
# (the copy-on-write instance stores and the union-find value layer make
# ASan coverage non-optional: an aliasing bug between a branch and its
# snapshot — stores or resolver — is exactly what it catches).
#
# Also available as a build target: `cmake --build build --target check`.
#
# Usage: tools/check.sh [--plain-only|--sanitize-only]
set -euo pipefail

cd "$(dirname "$0")/.."

mode="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_suite() {
  local build_dir="$1"; shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j "$jobs"
  ctest --test-dir "$build_dir" -L tier1 --output-on-failure -j "$jobs" \
    --timeout 600
}

if [[ "$mode" != "--sanitize-only" ]]; then
  echo "== plain build =="
  run_suite build
fi

if [[ "$mode" != "--plain-only" ]]; then
  echo "== address+undefined sanitizer build =="
  run_suite build-asan "-DPDX_SANITIZE=address;undefined" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi

echo "check.sh: all suites passed"
