#!/usr/bin/env bash
# Tier-1 verification: configure, build and run the tier-1 test suite
# (`ctest -L tier1`), first plain, then under AddressSanitizer + UBSan
# (the copy-on-write instance stores and the union-find value layer make
# ASan coverage non-optional: an aliasing bug between a branch and its
# snapshot — stores or resolver — is exactly what it catches), then the
# `parallel`-labeled tests under ThreadSanitizer (TSan and ASan cannot
# share a build tree, so the TSan pass builds only the concurrency
# tests in its own tree and runs just that label). The sanitizer suites
# run repeatedly: once on the default compiled-plan path, once with
# PDX_FORCE_INTERPRETER=1 pinning the retained interpreter, and once
# with PDX_FORCE_TREE_EXEC=1 pinning the recursive tree executor (the
# match VM's kill switch).
#
# The plain pass is followed by two perf smoke gates (`bench_chase
# --quick`: VM-vs-tree cross-check plus a conservative throughput floor
# on pipeline_n512; `bench_stream --quick`: incremental ±Δ re-solve vs
# full re-chase at 10% churn, fingerprint-cross-checked with a
# conservative speedup floor) and a pdxcli smoke stage: check/chase/solve on
# the shipped Example 1 setting with --metrics-out/--trace-out, failing on
# malformed exporter output, plus a -DPDX_OBS_NOOP=ON build gate proving
# the library and CLI still compile with the observability layer stubbed
# out (the stubs are all-inline, so nothing short of building exercises
# them).
#
# Also available as a build target: `cmake --build build --target check`.
#
# Usage: tools/check.sh [--plain-only|--smoke-only|--sanitize-only|--tsan-only]
set -euo pipefail

cd "$(dirname "$0")/.."

mode="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_suite() {
  local build_dir="$1"; shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j "$jobs"
  ctest --test-dir "$build_dir" -L tier1 --output-on-failure -j "$jobs" \
    --timeout 600
}

if [[ "$mode" == "all" || "$mode" == "--plain-only" ]]; then
  echo "== plain build =="
  run_suite build
fi

if [[ "$mode" == "all" || "$mode" == "--smoke-only" ]]; then
  echo "== pdxcli smoke (exporters) =="
  cmake -B build -S .
  cmake --build build -j "$jobs" --target pdxcli
  smoke_dir="$(mktemp -d)"
  trap 'rm -rf "$smoke_dir"' EXIT

  ./build/tools/pdxcli check --setting data/example1.pdx \
    --metrics-out "$smoke_dir/check.prom" >/dev/null
  ./build/tools/pdxcli chase --setting data/example1.pdx \
    --source data/example1_path.facts --threads 2 \
    --metrics-out "$smoke_dir/chase.prom" \
    --trace-out "$smoke_dir/chase.trace.json" >/dev/null
  ./build/tools/pdxcli solve --setting data/example1.pdx \
    --source data/example1_path.facts --threads 2 \
    --metrics-out "$smoke_dir/solve.prom" \
    --trace-out "$smoke_dir/solve.trace.json" >/dev/null

  # The Prometheus files must contain TYPE'd samples and the chase run must
  # have moved the chase counters; the traces must be valid JSON with a
  # traceEvents array.
  for prom in check chase solve; do
    grep -q '^# TYPE pdx_' "$smoke_dir/$prom.prom" ||
      { echo "smoke: $prom.prom has no # TYPE lines" >&2; exit 1; }
  done
  grep -q '^pdx_chase_steps_total [1-9]' "$smoke_dir/chase.prom" ||
    { echo "smoke: chase.prom did not count chase steps" >&2; exit 1; }
  for trace in chase solve; do
    grep -q '"traceEvents"' "$smoke_dir/$trace.trace.json" ||
      { echo "smoke: $trace.trace.json has no traceEvents" >&2; exit 1; }
    if command -v python3 >/dev/null 2>&1; then
      python3 -m json.tool "$smoke_dir/$trace.trace.json" >/dev/null ||
        { echo "smoke: $trace.trace.json is not valid JSON" >&2; exit 1; }
    fi
  done

  echo "== perf smoke gate (bench_chase --quick) =="
  cmake --build build -j "$jobs" --target bench_chase
  # Cross-checks the bytecode VM against the tree executor on
  # pipeline_n512 (same steps and canonical fingerprint) and fails if VM
  # throughput drops below a conservative facts/sec floor — a regression
  # tripwire, not a benchmark (full numbers live in BENCH_chase.json).
  ./build/bench/bench_chase --quick

  echo "== streaming smoke gate (bench_stream --quick) =="
  cmake --build build -j "$jobs" --target bench_stream
  # Replays a 10% churn stream into ResumeWithDeltas and a from-scratch
  # chase per batch, cross-checked for identical canonicalized
  # fingerprints, and fails if the incremental path is not comfortably
  # faster — a regression tripwire for deletion propagation (full numbers
  # live in BENCH_stream.json).
  ./build/bench/bench_stream --quick

  echo "== pdxd smoke (serving daemon) =="
  cmake --build build -j "$jobs" --target pdxd pdxctl bench_serve
  sock="$smoke_dir/pdxd.sock"
  msock="$smoke_dir/pdxd_metrics.sock"
  ./build/tools/pdxd --listen "unix:$sock" --metrics "unix:$msock" \
    --threads 4 >"$smoke_dir/pdxd.log" 2>&1 &
  pdxd_pid=$!
  trap 'kill "$pdxd_pid" 2>/dev/null || true; rm -rf "$smoke_dir"' EXIT
  for _ in $(seq 1 100); do [[ -S "$sock" ]] && break; sleep 0.1; done
  [[ -S "$sock" ]] ||
    { echo "smoke: pdxd did not come up" >&2; cat "$smoke_dir/pdxd.log" >&2
      exit 1; }

  # Scripted request mix: every pdxctl call exits nonzero on an ok=false
  # response, so under `set -e` each line is an assertion.
  ./build/tools/pdxctl call --addr "unix:$sock" \
    --json '{"verb":"ping"}' >/dev/null
  ./build/tools/pdxctl load --addr "unix:$sock" \
    --setting data/example1.pdx \
    --facts data/example1_triangle.facts >"$smoke_dir/load.json"
  tenant="$(grep -o '"tenant":"[0-9a-f]\{16\}"' "$smoke_dir/load.json" |
    head -1 | cut -d'"' -f4)"
  [[ -n "$tenant" ]] ||
    { echo "smoke: load response has no tenant id" >&2; exit 1; }
  # A disjoint edge keeps the instance transitively closed, so a solution
  # still exists after the write (E(c,a) would close the a->c->a cycle
  # and force the unjustified H(a,a)).
  ./build/tools/pdxctl call --addr "unix:$sock" --json \
    '{"verb":"write","tenant":"'"$tenant"'","facts":"E(d,e)."}' >/dev/null
  ./build/tools/pdxctl call --addr "unix:$sock" --json \
    '{"verb":"exists","tenant":"'"$tenant"'"}' |
    grep -q '"exists":true' ||
    { echo "smoke: triangle must have a solution" >&2; exit 1; }
  ./build/tools/pdxctl call --addr "unix:$sock" --json \
    '{"verb":"certain","tenant":"'"$tenant"'","query":"q(x,y) :- H(x,y)."}' \
    >/dev/null
  ./build/tools/pdxctl call --addr "unix:$sock" --json \
    '{"verb":"contains","tenant":"'"$tenant"'","facts":"H(a,c)."}' |
    grep -q '"contains":true' ||
    { echo "smoke: H(a,c) must be in the canonical instance" >&2; exit 1; }
  # Retraction round-trip: the disjoint edge leaves, its retraction is a
  # generation bump, and the fact is gone from the canonical instance
  # (the triangle — and hence existence — is untouched).
  ./build/tools/pdxctl call --addr "unix:$sock" --json \
    '{"verb":"retract","tenant":"'"$tenant"'","facts":"E(d,e)."}' >/dev/null
  ./build/tools/pdxctl call --addr "unix:$sock" --json \
    '{"verb":"contains","tenant":"'"$tenant"'","facts":"E(d,e)."}' |
    grep -q '"contains":false' ||
    { echo "smoke: retracted E(d,e) must leave the instance" >&2; exit 1; }
  ./build/tools/pdxctl call --addr "unix:$sock" --json \
    '{"verb":"exists","tenant":"'"$tenant"'"}' |
    grep -q '"exists":true' ||
    { echo "smoke: retraction must not break the triangle's solution" >&2
      exit 1; }
  ./build/tools/pdxctl call --addr "unix:$sock" \
    --json '{"verb":"stats"}' >/dev/null
  # Malformed input must come back as a clean error response (pdxctl
  # exits 1 on ok=false, so invert).
  ! ./build/tools/pdxctl call --addr "unix:$sock" \
    --json '{"verb":"frobnicate"}' >/dev/null ||
    { echo "smoke: unknown verb must be rejected" >&2; exit 1; }

  # The /metrics endpoint must serve Prometheus 0.0.4 text with the
  # pdx_serve_* families populated by the mix above.
  ./build/tools/pdxctl scrape --addr "unix:$msock" >"$smoke_dir/pdxd.prom"
  grep -q '^# TYPE pdx_serve_requests_total counter' "$smoke_dir/pdxd.prom" ||
    { echo "smoke: pdxd.prom has no serve counter TYPE line" >&2; exit 1; }
  grep -q '^pdx_serve_write_requests_total [1-9]' "$smoke_dir/pdxd.prom" ||
    { echo "smoke: pdxd.prom did not count writes" >&2; exit 1; }
  grep -q '^pdx_serve_retract_requests_total [1-9]' "$smoke_dir/pdxd.prom" ||
    { echo "smoke: pdxd.prom did not count retractions" >&2; exit 1; }
  grep -q 'pdx_serve_latency_micros_write_bucket{le="+Inf"}' \
    "$smoke_dir/pdxd.prom" ||
    { echo "smoke: pdxd.prom has no write latency histogram" >&2; exit 1; }

  # Graceful drain: the shutdown verb answers first, then the daemon
  # exits 0 on its own — with a timeout guard so a hung drain fails loudly.
  ./build/tools/pdxctl call --addr "unix:$sock" \
    --json '{"verb":"shutdown"}' | grep -q '"draining":true' ||
    { echo "smoke: shutdown did not acknowledge" >&2; exit 1; }
  for _ in $(seq 1 100); do
    kill -0 "$pdxd_pid" 2>/dev/null || break
    sleep 0.1
  done
  if kill -0 "$pdxd_pid" 2>/dev/null; then
    echo "smoke: pdxd did not drain within 10s" >&2
    kill -9 "$pdxd_pid"
    exit 1
  fi
  wait "$pdxd_pid" ||
    { echo "smoke: pdxd exited nonzero" >&2
      cat "$smoke_dir/pdxd.log" >&2; exit 1; }
  trap 'rm -rf "$smoke_dir"' EXIT

  echo "== serve smoke gate (bench_serve --quick) =="
  # In-process daemon + concurrent socket clients: fails on any error
  # response or if a frozen-writer burst fails to coalesce into fewer
  # chase rounds than writes.
  ./build/bench/bench_serve --quick

  echo "== PDX_OBS_NOOP build gate =="
  cmake -B build-noop -S . -DPDX_OBS_NOOP=ON
  cmake --build build-noop -j "$jobs" --target pdx pdxcli
  # The stubbed CLI must still run; its exporters emit empty documents.
  ./build-noop/tools/pdxcli check --setting data/example1.pdx \
    --metrics-out "$smoke_dir/noop.prom" >/dev/null
fi

if [[ "$mode" == "all" || "$mode" == "--sanitize-only" ]]; then
  echo "== address+undefined sanitizer build =="
  run_suite build-asan "-DPDX_SANITIZE=address;undefined" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  # Same build, interpreter forced: PDX_FORCE_INTERPRETER=1 disables the
  # compiled match/apply plans process-wide, so the retained interpreter —
  # the cross-validation baseline — keeps its own sanitizer coverage now
  # that the default path runs through plan/.
  echo "== address+undefined sanitizer rerun (interpreter forced) =="
  PDX_FORCE_INTERPRETER=1 ctest --test-dir build-asan -L tier1 \
    --output-on-failure -j "$jobs" --timeout 600
  # And with the match VM disabled: PDX_FORCE_TREE_EXEC=1 pins the
  # recursive tree executor (the bytecode VM's kill switch), keeping the
  # fallback path under ASan now that the VM is the default executor.
  echo "== address+undefined sanitizer rerun (tree executor forced) =="
  PDX_FORCE_TREE_EXEC=1 ctest --test-dir build-asan -L tier1 \
    --output-on-failure -j "$jobs" --timeout 600
fi

if [[ "$mode" == "all" || "$mode" == "--tsan-only" ]]; then
  echo "== thread sanitizer build (parallel tests, speculative forced) =="
  cmake -B build-tsan -S . -DPDX_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "$jobs" \
    --target thread_pool_test trigger_ledger_test chase_parallel_test \
    sharded_apply_test fuzz_test obs_test serve_test stream_test
  # PDX_FORCE_SPECULATIVE=1 makes every parallel-labeled chase take the
  # speculative path (worker-side head instantiation, concurrent ledger,
  # cross-dependency pipelining) — code TSan most needs to see; the
  # barrier path is the default everywhere else and already sanitized by
  # earlier PRs' runs.
  PDX_FORCE_SPECULATIVE=1 ctest --test-dir build-tsan -L parallel \
    --output-on-failure -j "$jobs" --timeout 600
  # And once more with plans disabled: the speculative engine's
  # interpreter lane (worker-side interpreted matching) stays data-race
  # clean even though compiled plans are the default.
  PDX_FORCE_SPECULATIVE=1 PDX_FORCE_INTERPRETER=1 ctest \
    --test-dir build-tsan -L parallel \
    --output-on-failure -j "$jobs" --timeout 600
  # The footprint-DAG schedule adds the relation-sharded apply fan-out and
  # the combined collect-ahead batches on top of the speculative
  # machinery; pin it for its own sanitized pass.
  echo "== thread sanitizer rerun (dag schedule forced) =="
  PDX_FORCE_SCHEDULE=dag ctest --test-dir build-tsan -L parallel \
    --output-on-failure -j "$jobs" --timeout 600
  # Tree-executor lane: parallel collection with the VM kill switch on —
  # the recursive executor must stay race-free when pool workers
  # enumerate delta partitions through it.
  echo "== thread sanitizer rerun (tree executor forced) =="
  PDX_FORCE_TREE_EXEC=1 ctest --test-dir build-tsan -L parallel \
    --output-on-failure -j "$jobs" --timeout 600
fi

echo "check.sh: all suites passed"
