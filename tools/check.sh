#!/usr/bin/env bash
# Tier-1 verification: configure, build and run the tier-1 test suite
# (`ctest -L tier1`), first plain, then under AddressSanitizer + UBSan
# (the copy-on-write instance stores and the union-find value layer make
# ASan coverage non-optional: an aliasing bug between a branch and its
# snapshot — stores or resolver — is exactly what it catches), then the
# `parallel`-labeled tests under ThreadSanitizer (TSan and ASan cannot
# share a build tree, so the TSan pass builds only the two concurrency
# tests in its own tree and runs just that label).
#
# Also available as a build target: `cmake --build build --target check`.
#
# Usage: tools/check.sh [--plain-only|--sanitize-only|--tsan-only]
set -euo pipefail

cd "$(dirname "$0")/.."

mode="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_suite() {
  local build_dir="$1"; shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j "$jobs"
  ctest --test-dir "$build_dir" -L tier1 --output-on-failure -j "$jobs" \
    --timeout 600
}

if [[ "$mode" == "all" || "$mode" == "--plain-only" ]]; then
  echo "== plain build =="
  run_suite build
fi

if [[ "$mode" == "all" || "$mode" == "--sanitize-only" ]]; then
  echo "== address+undefined sanitizer build =="
  run_suite build-asan "-DPDX_SANITIZE=address;undefined" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi

if [[ "$mode" == "all" || "$mode" == "--tsan-only" ]]; then
  echo "== thread sanitizer build (parallel tests) =="
  cmake -B build-tsan -S . -DPDX_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "$jobs" \
    --target thread_pool_test chase_parallel_test
  ctest --test-dir build-tsan -L parallel --output-on-failure -j "$jobs" \
    --timeout 600
fi

echo "check.sh: all suites passed"
