// Experiment E5 (Theorem 2 vs [8]): certain answers are coNP-hard in peer
// data exchange but PTIME in plain data exchange. Both series share the
// same Σ_st (E(x,y) -> ∃z H(x,z)); the PDE variant adds the exactness
// constraint H(x,y) -> E(x,y), which multiplies the minimal-solution space
// (one choice of witness per source node), while the data-exchange variant
// answers from the single universal solution.

#include <benchmark/benchmark.h>

#include "logic/parser.h"
#include "pde/certain_answers.h"
#include "workload/graph_gen.h"
#include "workload/random.h"

namespace pdx {
namespace {

// Builds the E-instance of an out-degree-2 graph with n nodes: node i
// points at i+1 and i+2 (mod n). Every node has two possible witnesses, so
// the PDE setting has ~2^n minimal solutions.
Instance DegreeTwoGraph(const PdeSetting& setting, int n,
                        SymbolTable* symbols) {
  Instance instance = setting.EmptyInstance();
  RelationId e = setting.schema().FindRelation("E").value();
  std::vector<Value> nodes;
  for (int i = 0; i < n; ++i) {
    nodes.push_back(symbols->InternConstant("u" + std::to_string(i)));
  }
  for (int i = 0; i < n; ++i) {
    instance.AddFact(e, {nodes[i], nodes[(i + 1) % n]});
    instance.AddFact(e, {nodes[i], nodes[(i + 2) % n]});
  }
  return instance;
}

void BM_CertainAnswersPde(benchmark::State& state) {
  SymbolTable symbols;
  auto setting = PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}},
      "E(x,y) -> exists z: H(x,z).",
      "H(x,y) -> E(x,y).", "", &symbols);
  PDX_CHECK(setting.ok());
  int n = static_cast<int>(state.range(0));
  Instance source = DegreeTwoGraph(*setting, n, &symbols);
  auto query = ParseUnionQuery("q(x) :- H(x,y).", setting->schema(),
                               &symbols);
  PDX_CHECK(query.ok());
  GenericSolverOptions options;
  options.max_nodes = 100'000'000;
  int64_t solutions = 0;
  int64_t answers = 0;
  for (auto _ : state) {
    auto result = ComputeCertainAnswers(*setting, source,
                                        setting->EmptyInstance(), *query,
                                        &symbols, options);
    PDX_CHECK(result.ok()) << result.status().ToString();
    solutions = result->solutions_enumerated;
    answers = static_cast<int64_t>(result->answers.size());
  }
  state.counters["graph_nodes"] = n;
  state.counters["minimal_solutions"] = static_cast<double>(solutions);
  state.counters["certain_answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_CertainAnswersPde)
    ->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(12)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_CertainAnswersDataExchange(benchmark::State& state) {
  SymbolTable symbols;
  auto setting = PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}},
      "E(x,y) -> exists z: H(x,z).", "", "", &symbols);
  PDX_CHECK(setting.ok());
  int n = static_cast<int>(state.range(0));
  Instance source = DegreeTwoGraph(*setting, n, &symbols);
  auto query = ParseUnionQuery("q(x) :- H(x,y).", setting->schema(),
                               &symbols);
  PDX_CHECK(query.ok());
  int64_t answers = 0;
  for (auto _ : state) {
    auto result = ComputeCertainAnswers(
        *setting, source, setting->EmptyInstance(), *query, &symbols);
    PDX_CHECK(result.ok());
    PDX_CHECK(result->used_data_exchange_fast_path);
    answers = static_cast<int64_t>(result->answers.size());
  }
  state.counters["graph_nodes"] = n;
  state.counters["certain_answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_CertainAnswersDataExchange)
    ->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(12)
    // The PTIME baseline also scales far beyond the PDE series' reach:
    ->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pdx

BENCHMARK_MAIN();
