// Experiment E2 (Theorem 3): SOL(P) is NP-complete; the complete solver's
// cost on the CLIQUE reduction grows super-polynomially with the graph
// size, and "no" instances (which require exhausting the space) are the
// expensive ones. Series:
//   * generic search on graphs without a k-clique (worst case),
//   * generic search on graphs with a planted k-clique (finds early),
//   * the Theorem 5 homomorphism algorithm on the same instances (correct
//     here by condition 1, but its blocks grow with the input, so it is
//     exponential too — just with much smaller constants).

#include <benchmark/benchmark.h>

#include "pde/ctract_solver.h"
#include "pde/generic_solver.h"
#include "workload/graph_gen.h"
#include "workload/reductions.h"

namespace pdx {
namespace {

constexpr int kCliqueSize = 3;

// A deterministic graph on n nodes with no 3-clique: the complete
// bipartite-ish graph given by connecting i-j when (i + j) is odd
// (bipartite by parity, hence triangle-free) — dense but clique-free.
Graph TriangleFreeGraph(int n) {
  Graph g;
  g.node_count = n;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if ((u + v) % 2 == 1) g.edges.emplace_back(u, v);
    }
  }
  return g;
}

void BM_GenericSearchNoClique(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Graph graph = TriangleFreeGraph(n);
  PDX_CHECK(!HasClique(graph, kCliqueSize));
  SymbolTable symbols;
  auto setting = MakeCliqueSetting(&symbols);
  PDX_CHECK(setting.ok());
  Instance source =
      MakeCliqueSourceInstance(*setting, graph, kCliqueSize, &symbols);
  GenericSolverOptions options;
  options.max_nodes = 50'000'000;
  int64_t nodes = 0;
  for (auto _ : state) {
    auto result = GenericExistsSolution(*setting, source,
                                        setting->EmptyInstance(), &symbols,
                                        options);
    PDX_CHECK(result.ok());
    PDX_CHECK(result->outcome == SolveOutcome::kNoSolution);
    nodes = result->nodes_explored;
  }
  state.counters["graph_nodes"] = n;
  state.counters["search_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_GenericSearchNoClique)
    ->Arg(4)->Arg(5)->Arg(6)->Arg(7)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_GenericSearchPlantedClique(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(61);
  Graph graph = PlantClique(TriangleFreeGraph(n), kCliqueSize, &rng);
  PDX_CHECK(HasClique(graph, kCliqueSize));
  SymbolTable symbols;
  auto setting = MakeCliqueSetting(&symbols);
  PDX_CHECK(setting.ok());
  Instance source =
      MakeCliqueSourceInstance(*setting, graph, kCliqueSize, &symbols);
  GenericSolverOptions options;
  options.max_nodes = 50'000'000;
  int64_t nodes = 0;
  for (auto _ : state) {
    auto result = GenericExistsSolution(*setting, source,
                                        setting->EmptyInstance(), &symbols,
                                        options);
    PDX_CHECK(result.ok());
    PDX_CHECK(result->outcome == SolveOutcome::kSolutionFound);
    nodes = result->nodes_explored;
  }
  state.counters["graph_nodes"] = n;
  state.counters["search_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_GenericSearchPlantedClique)
    ->Arg(4)->Arg(5)->Arg(6)->Arg(7)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_HomSolverNoClique(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Graph graph = TriangleFreeGraph(n);
  SymbolTable symbols;
  auto setting = MakeCliqueSetting(&symbols);
  PDX_CHECK(setting.ok());
  Instance source =
      MakeCliqueSourceInstance(*setting, graph, kCliqueSize, &symbols);
  int64_t max_block_nulls = 0;
  for (auto _ : state) {
    auto result = CtractExistsSolution(*setting, source,
                                       setting->EmptyInstance(), &symbols);
    PDX_CHECK(result.ok());
    PDX_CHECK(!result->has_solution);
    max_block_nulls = result->max_block_nulls;
  }
  state.counters["graph_nodes"] = n;
  state.counters["max_block_nulls"] = static_cast<double>(max_block_nulls);
}
BENCHMARK(BM_HomSolverNoClique)
    ->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(12)
    ->Unit(benchmark::kMillisecond);

void BM_HomSolverPlantedClique(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(67);
  Graph graph = PlantClique(TriangleFreeGraph(n), kCliqueSize, &rng);
  SymbolTable symbols;
  auto setting = MakeCliqueSetting(&symbols);
  PDX_CHECK(setting.ok());
  Instance source =
      MakeCliqueSourceInstance(*setting, graph, kCliqueSize, &symbols);
  for (auto _ : state) {
    auto result = CtractExistsSolution(*setting, source,
                                       setting->EmptyInstance(), &symbols);
    PDX_CHECK(result.ok());
    PDX_CHECK(result->has_solution);
    benchmark::DoNotOptimize(*result);
  }
  state.counters["graph_nodes"] = n;
}
BENCHMARK(BM_HomSolverPlantedClique)
    ->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(12)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pdx

BENCHMARK_MAIN();
