// Experiment E4 (Theorem 6): in C_tract settings, every block of I_can has
// a constant number of nulls regardless of the input size; outside C_tract
// (the CLIQUE setting) blocks grow with the input. This bench reproduces
// that contrast by running the two chases of Figure 3 and decomposing
// I_can into blocks, without the final homomorphism step.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "chase/chase.h"
#include "hom/instance_hom.h"
#include "workload/genomics.h"
#include "workload/random.h"
#include "workload/reductions.h"
#include "workload/setting_gen.h"

namespace pdx {
namespace {

// Runs steps 1-2 of Figure 3 and returns the block-size profile of I_can.
struct BlockProfile {
  int64_t block_count = 0;
  int64_t max_block_nulls = 0;
  int64_t max_block_facts = 0;
  int64_t i_can_facts = 0;
};

BlockProfile ProfileBlocks(const PdeSetting& setting, const Instance& source,
                           const Instance& target, SymbolTable* symbols) {
  Instance combined = setting.CombineInstances(source, target);
  ChaseResult st_chase = Chase(combined, setting.st_tgds(), symbols);
  PDX_CHECK(st_chase.outcome == ChaseOutcome::kSuccess);
  Instance j_can = setting.TargetPart(st_chase.instance);
  ChaseResult ts_chase = Chase(j_can, setting.ts_tgds(), symbols);
  PDX_CHECK(ts_chase.outcome == ChaseOutcome::kSuccess);
  Instance i_can = setting.SourcePart(ts_chase.instance);
  BlockProfile profile;
  profile.i_can_facts = static_cast<int64_t>(i_can.fact_count());
  for (const Block& block : DecomposeIntoBlocks(i_can)) {
    ++profile.block_count;
    profile.max_block_nulls = std::max(
        profile.max_block_nulls, static_cast<int64_t>(block.nulls.size()));
    profile.max_block_facts = std::max(
        profile.max_block_facts, static_cast<int64_t>(block.facts.size()));
  }
  return profile;
}

void ReportProfile(benchmark::State& state, const BlockProfile& profile,
                   size_t source_facts) {
  state.counters["source_facts"] = static_cast<double>(source_facts);
  state.counters["i_can_facts"] = static_cast<double>(profile.i_can_facts);
  state.counters["blocks"] = static_cast<double>(profile.block_count);
  state.counters["max_block_nulls"] =
      static_cast<double>(profile.max_block_nulls);
}

// C_tract family 1: the genomics setting (conditions 1 + 2.1).
void BM_BlocksGenomics(benchmark::State& state) {
  SymbolTable symbols;
  auto setting = MakeGenomicsSetting(&symbols);
  PDX_CHECK(setting.ok());
  Rng rng(3);
  GenomicsWorkloadOptions opts;
  opts.proteins = static_cast<int>(state.range(0));
  GenomicsWorkload workload =
      MakeGenomicsWorkload(*setting, opts, &rng, &symbols);
  BlockProfile profile;
  for (auto _ : state) {
    profile = ProfileBlocks(*setting, workload.source, workload.target,
                            &symbols);
    benchmark::DoNotOptimize(profile);
  }
  ReportProfile(state, profile, workload.source.fact_count());
}
BENCHMARK(BM_BlocksGenomics)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// C_tract family 2: random LAV settings.
void BM_BlocksLav(benchmark::State& state) {
  Rng rng(5);
  SymbolTable symbols;
  SettingGenOptions opts;
  opts.max_arity = 2;
  auto generated = MakeRandomLavSetting(opts, &rng, &symbols);
  PDX_CHECK(generated.ok());
  int facts = static_cast<int>(state.range(0));
  Instance source = MakeRandomSourceInstance(generated->setting, facts,
                                             facts / 2 + 2, &rng, &symbols);
  Instance target = generated->setting.EmptyInstance();
  BlockProfile profile;
  for (auto _ : state) {
    profile = ProfileBlocks(generated->setting, source, target, &symbols);
    benchmark::DoNotOptimize(profile);
  }
  ReportProfile(state, profile, source.fact_count());
}
BENCHMARK(BM_BlocksLav)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// Outside C_tract: the CLIQUE setting; block null counts grow linearly
// with k(k-1) and connect through the shared S-atoms.
void BM_BlocksClique(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  SymbolTable symbols;
  auto setting = MakeCliqueSetting(&symbols);
  PDX_CHECK(setting.ok());
  Graph graph = CompleteGraph(k + 1);
  Instance source = MakeCliqueSourceInstance(*setting, graph, k, &symbols);
  Instance target = setting->EmptyInstance();
  BlockProfile profile;
  for (auto _ : state) {
    profile = ProfileBlocks(*setting, source, target, &symbols);
    benchmark::DoNotOptimize(profile);
  }
  ReportProfile(state, profile, source.fact_count());
}
BENCHMARK(BM_BlocksClique)
    ->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pdx

BENCHMARK_MAIN();
