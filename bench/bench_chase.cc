// Chase engine A/B bench: runs the same workloads through the naive
// full-rescan restricted chase (Substitute-based egd steps) and the
// delta-driven one (union-find egd merges in the value layer), and writes
// the results as machine-readable JSON (BENCH_chase.json) so the speedup
// is trackable across commits.
//
// Per workload and strategy it reports wall time (best of `kRepeats`),
// chase steps, resolved result facts, and derived facts per second; per
// workload it reports the naive/delta speedup. A second axis
// (compiled_vs_interpreted) A/Bs the dependency compiler of plan/ against
// the retained interpreter at 1 thread on the largest workloads. Strategies are also
// cross-checked for resolved-fingerprint agreement, so a run doubles as a
// coarse correctness gate. The egd_heavy workloads are the A/B for the
// union-find value layer: every invented null is merged by a key egd, so
// the naive engine pays a relation rebuild per merge while the delta
// engine pays one union plus re-examination of the dirty tuples.
//
// A third axis (bytecode_vs_tree) A/Bs the match-loop bytecode VM of
// hom/match_vm.h against the recursive tree executor it replaced, on the
// compiled delta strategy at 1 thread — step- and fingerprint-cross-checked
// like compiled_vs_interpreted.
//
// Usage: bench_chase [output.json]   (default BENCH_chase.json in cwd)
//        bench_chase --quick         (perf smoke gate: pipeline_n512 under
//                                     both executors; exits nonzero if the
//                                     VM is slower than the conservative
//                                     facts/sec floor or the executors
//                                     disagree)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "chase/chase.h"
#include "hom/instance_hom.h"
#include "hom/match_vm.h"
#include "logic/parser.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "workload/random.h"

namespace pdx {
namespace {

constexpr int kRepeats = 5;

struct StrategyStats {
  double wall_ms = 0;
  int64_t steps = 0;
  int64_t result_facts = 0;
  double facts_per_sec = 0;
  uint64_t fingerprint = 0;
  // Fingerprint after canonical null renumbering (computed outside the
  // timed region): the cross-check that speculative runs — whose null
  // identities are schedule-dependent — produced the same instance up to
  // a bijective null renaming.
  uint64_t canonical_fingerprint = 0;
};

struct WorkloadResult {
  std::string name;
  int64_t input_facts = 0;
  StrategyStats naive;
  StrategyStats delta;
};

// One (num_threads, schedule) point of the thread-scaling dimension
// (delta strategy only; the naive engine has no parallel path).
struct ThreadPoint {
  int threads = 0;
  ChaseSchedule schedule = ChaseSchedule::kBarrier;
  double wall_ms = 0;
  int64_t steps = 0;
  double speedup_vs_1t = 0;
};

struct ThreadScalingResult {
  std::string name;
  int64_t input_facts = 0;
  std::vector<ThreadPoint> points;
  // Barrier wall time over speculative/dag wall time at 8 threads (> 1
  // means the mode beats barrier there) — the headline ratios for the
  // schedule axes.
  double speculative_vs_barrier_8t = 0;
  double dag_vs_barrier_8t = 0;
};

struct BenchContext {
  Schema schema;
  SymbolTable symbols;
  std::vector<Tgd> pipeline_tgds;
  std::vector<Tgd> existential_tgds;
  std::vector<Egd> key_egds;
  std::vector<Tgd> egd_heavy_tgds;
  std::vector<Egd> egd_heavy_egds;

  BenchContext() {
    PDX_CHECK(schema.AddRelation("E", 2).ok());
    PDX_CHECK(schema.AddRelation("H", 2).ok());
    PDX_CHECK(schema.AddRelation("F", 2).ok());
    auto deps = ParseDependencies(
        "E(x,z) & E(z,y) -> H(x,y)."
        "H(x,y) -> exists w: F(y,w).",
        schema, &symbols);
    PDX_CHECK(deps.ok());
    pipeline_tgds = std::move(deps).value().tgds;
    auto deps_ex = ParseDependencies("E(x,y) -> exists z: H(x,z). "
                                     "H(x,y) -> exists w: F(y,w).",
                                     schema, &symbols);
    PDX_CHECK(deps_ex.ok());
    existential_tgds = std::move(deps_ex).value().tgds;
    auto deps2 =
        ParseDependencies("H(x,y) & H(x,z) -> y = z.", schema, &symbols);
    PDX_CHECK(deps2.ok());
    key_egds = std::move(deps2).value().egds;
    // Egd-heavy: the existential shared across the two head atoms forces
    // one fresh null per E-edge (no single H-fact can satisfy two edges'
    // triggers), and the two key egds then merge them in cascades — an
    // H-merge on x dirties the F-facts of x's neighbors and vice versa —
    // until each connected component keeps one null. Nearly every chase
    // step is a merge, which the naive engine pays as a Substitute
    // rebuild of H and F.
    auto deps3 = ParseDependencies(
        "E(x,y) -> exists z: H(x,z) & F(y,z).", schema, &symbols);
    PDX_CHECK(deps3.ok());
    egd_heavy_tgds = std::move(deps3).value().tgds;
    auto deps4 = ParseDependencies(
        "H(x,y) & H(x,z) -> y = z. F(x,y) & F(x,z) -> y = z.", schema,
        &symbols);
    PDX_CHECK(deps4.ok());
    egd_heavy_egds = std::move(deps4).value().egds;
  }

  // A random E-graph with `n` nodes and ~`edges_per_node * n` edges.
  Instance RandomEdges(int n, int edges_per_node, uint64_t seed) {
    Rng rng(seed);
    Instance instance(&schema);
    for (int i = 0; i < edges_per_node * n; ++i) {
      Value u =
          symbols.InternConstant("n" + std::to_string(rng.UniformInt(n)));
      Value v =
          symbols.InternConstant("n" + std::to_string(rng.UniformInt(n)));
      instance.AddFact(0, {u, v});
    }
    return instance;
  }
};

StrategyStats RunOne(SymbolTable* symbols, const Instance& start,
                     const std::vector<Tgd>& tgds,
                     const std::vector<Egd>& egds, ChaseStrategy strategy,
                     int num_threads = 1,
                     ChaseSchedule schedule = ChaseSchedule::kBarrier,
                     bool compile_plans = true) {
  ChaseOptions options;
  options.strategy = strategy;
  options.num_threads = num_threads;
  options.schedule = schedule;
  options.compile_plans = compile_plans;
  options.max_steps = 10'000'000;
  StrategyStats stats;
  // The metrics registry is the authoritative step count: the JSON below
  // reports the registry delta of pdx_chase_steps_total around each run,
  // pinned equal to the engine's own count, so BENCH_chase.json and a
  // --metrics-out dump can never disagree. (A PDX_OBS_NOOP build has no
  // registry and falls back to the engine's count.)
  static obs::Counter chase_steps =
      obs::MetricsRegistry::Global().GetCounter("pdx_chase_steps_total");
  for (int rep = 0; rep < kRepeats; ++rep) {
    int64_t steps_before = chase_steps.Value();
    auto t0 = std::chrono::steady_clock::now();
    ChaseResult result = Chase(start, tgds, egds, symbols, options);
    auto t1 = std::chrono::steady_clock::now();
    PDX_CHECK(result.outcome == ChaseOutcome::kSuccess);
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || ms < stats.wall_ms) stats.wall_ms = ms;
#ifndef PDX_OBS_NOOP
    stats.steps = chase_steps.Value() - steps_before;
    PDX_CHECK(stats.steps == result.steps)
        << "registry steps diverged from ChaseResult::steps";
#else
    (void)steps_before;
    stats.steps = result.steps;
#endif
    // Resolved counts/fingerprints so the Substitute-based and union-find
    // engines are compared on the same (materialized-equivalent) view.
    stats.result_facts =
        static_cast<int64_t>(result.instance.ResolvedFactCount());
    if (rep == 0) {
      stats.fingerprint = result.instance.CanonicalFingerprint();
      stats.canonical_fingerprint =
          CanonicalizeNulls(result.instance).CanonicalFingerprint();
    }
  }
  // Throughput in derived facts (result minus input) per second.
  double derived =
      static_cast<double>(stats.result_facts) -
      static_cast<double>(start.fact_count());
  stats.facts_per_sec =
      stats.wall_ms > 0 ? derived / (stats.wall_ms / 1000.0) : 0;
  return stats;
}

WorkloadResult RunWorkload(BenchContext& ctx, const std::string& name,
                           const Instance& start,
                           const std::vector<Tgd>& tgds,
                           const std::vector<Egd>& egds) {
  WorkloadResult result;
  result.name = name;
  result.input_facts = static_cast<int64_t>(start.fact_count());
  result.naive =
      RunOne(&ctx.symbols, start, tgds, egds, ChaseStrategy::kRestrictedNaive);
  result.delta =
      RunOne(&ctx.symbols, start, tgds, egds, ChaseStrategy::kRestricted);
  PDX_CHECK(result.naive.fingerprint == result.delta.fingerprint)
      << "strategy disagreement on workload " << name;
  std::fprintf(stderr,
               "%-24s naive %9.2f ms (%6lld steps)   delta %9.2f ms "
               "(%6lld steps)   speedup %5.2fx\n",
               name.c_str(), result.naive.wall_ms,
               static_cast<long long>(result.naive.steps),
               result.delta.wall_ms,
               static_cast<long long>(result.delta.steps),
               result.naive.wall_ms / result.delta.wall_ms);
  return result;
}

// The compiled-vs-interpreted dimension: the delta strategy at 1 thread
// with ChaseOptions::compile_plans off (the retained interpreter) and on
// (the plan/ dependency compiler). Enumeration order — and hence fresh
// null identities — is schedule-dependent between the two executors, so
// the cross-check is renaming-invariant: identical canonicalized
// fingerprints and step counts.
struct CompiledVsInterpretedResult {
  std::string name;
  int64_t input_facts = 0;
  StrategyStats interpreted;
  StrategyStats compiled;
  // compiled facts/sec over interpreted facts/sec (> 1 = compiler wins).
  double speedup = 0;
};

CompiledVsInterpretedResult RunCompiledVsInterpreted(
    SymbolTable* symbols, const std::string& name, const Instance& start,
    const std::vector<Tgd>& tgds, const std::vector<Egd>& egds) {
  CompiledVsInterpretedResult result;
  result.name = name;
  result.input_facts = static_cast<int64_t>(start.fact_count());
  result.interpreted =
      RunOne(symbols, start, tgds, egds, ChaseStrategy::kRestricted,
             /*num_threads=*/1, ChaseSchedule::kBarrier,
             /*compile_plans=*/false);
  result.compiled =
      RunOne(symbols, start, tgds, egds, ChaseStrategy::kRestricted,
             /*num_threads=*/1, ChaseSchedule::kBarrier,
             /*compile_plans=*/true);
  PDX_CHECK(result.compiled.canonical_fingerprint ==
            result.interpreted.canonical_fingerprint)
      << "compiled chase not isomorphic to interpreted chase on " << name;
  PDX_CHECK(result.compiled.steps == result.interpreted.steps)
      << "compiled chase changed the step count on " << name;
  result.speedup = result.interpreted.facts_per_sec > 0
                       ? result.compiled.facts_per_sec /
                             result.interpreted.facts_per_sec
                       : 0;
  std::fprintf(stderr,
               "%-24s interpreted %9.2f ms   compiled %9.2f ms   "
               "facts/sec speedup %5.2fx\n",
               name.c_str(), result.interpreted.wall_ms,
               result.compiled.wall_ms, result.speedup);
  return result;
}

// The bytecode-vs-tree dimension: the compiled delta strategy at 1 thread
// under the recursive tree executor (PDX_FORCE_TREE_EXEC's baseline) and
// the bytecode VM (the default). Both executors run the same compiled
// plans and enumerate identical match sets per partition, so steps and
// canonicalized fingerprints must agree exactly; only wall time may move.
struct BytecodeVsTreeResult {
  std::string name;
  int64_t input_facts = 0;
  StrategyStats tree;
  StrategyStats bytecode;
  // bytecode facts/sec over tree facts/sec (> 1 = the VM wins).
  double speedup = 0;
};

BytecodeVsTreeResult RunBytecodeVsTree(SymbolTable* symbols,
                                       const std::string& name,
                                       const Instance& start,
                                       const std::vector<Tgd>& tgds,
                                       const std::vector<Egd>& egds) {
  BytecodeVsTreeResult result;
  result.name = name;
  result.input_facts = static_cast<int64_t>(start.fact_count());
  const bool saved_force = ForceTreeExec();
  SetForceTreeExec(true);
  result.tree = RunOne(symbols, start, tgds, egds, ChaseStrategy::kRestricted,
                       /*num_threads=*/1, ChaseSchedule::kBarrier,
                       /*compile_plans=*/true);
  SetForceTreeExec(false);
  result.bytecode =
      RunOne(symbols, start, tgds, egds, ChaseStrategy::kRestricted,
             /*num_threads=*/1, ChaseSchedule::kBarrier,
             /*compile_plans=*/true);
  SetForceTreeExec(saved_force);
  PDX_CHECK(result.bytecode.canonical_fingerprint ==
            result.tree.canonical_fingerprint)
      << "bytecode chase not isomorphic to tree chase on " << name;
  PDX_CHECK(result.bytecode.steps == result.tree.steps)
      << "bytecode chase changed the step count on " << name;
  result.speedup =
      result.tree.facts_per_sec > 0
          ? result.bytecode.facts_per_sec / result.tree.facts_per_sec
          : 0;
  std::fprintf(stderr,
               "%-24s tree %9.2f ms   bytecode %9.2f ms   "
               "facts/sec speedup %5.2fx\n",
               name.c_str(), result.tree.wall_ms, result.bytecode.wall_ms,
               result.speedup);
  return result;
}

// The thread-scaling dimension: the same workload, delta strategy, at
// 1/2/4/8 worker threads, barrier then speculative then dag. Every
// barrier point is cross-checked against the 1-thread run for identical
// fingerprints and step counts — the parallel path must change wall time
// only. Every speculative and dag point must match the barrier base's
// step count and its canonicalized fingerprint (their null identities
// are schedule-dependent, so only renaming-invariant equality is
// meaningful). On merge-heavy workloads the pooled path also switches
// the egd fixpoint from find-one-then-rescan to batched
// collect-then-apply, so multi-thread points can beat 1-thread even on a
// single core.
ThreadScalingResult RunThreadScaling(SymbolTable* symbols,
                                     const std::string& name,
                                     const Instance& start,
                                     const std::vector<Tgd>& tgds,
                                     const std::vector<Egd>& egds) {
  ThreadScalingResult result;
  result.name = name;
  result.input_facts = static_cast<int64_t>(start.fact_count());
  StrategyStats base;
  double barrier_8t_ms = 0, spec_8t_ms = 0, dag_8t_ms = 0;
  for (ChaseSchedule schedule :
       {ChaseSchedule::kBarrier, ChaseSchedule::kSpeculative,
        ChaseSchedule::kDag}) {
    for (int threads : {1, 2, 4, 8}) {
      StrategyStats stats =
          RunOne(symbols, start, tgds, egds, ChaseStrategy::kRestricted,
                 threads, schedule);
      bool barrier = schedule == ChaseSchedule::kBarrier;
      if (barrier && threads == 1) {
        base = stats;
      } else if (barrier) {
        PDX_CHECK(stats.fingerprint == base.fingerprint)
            << "thread count changed the result on " << name;
        PDX_CHECK(stats.steps == base.steps)
            << "thread count changed the step count on " << name;
      } else {
        PDX_CHECK(stats.canonical_fingerprint == base.canonical_fingerprint)
            << ScheduleName(schedule)
            << " run not isomorphic to barrier base on " << name;
        PDX_CHECK(stats.steps == base.steps)
            << ScheduleName(schedule) << " run changed the step count on "
            << name;
      }
      if (threads == 8) {
        switch (schedule) {
          case ChaseSchedule::kBarrier: barrier_8t_ms = stats.wall_ms; break;
          case ChaseSchedule::kSpeculative: spec_8t_ms = stats.wall_ms; break;
          case ChaseSchedule::kDag: dag_8t_ms = stats.wall_ms; break;
        }
      }
      ThreadPoint point;
      point.threads = threads;
      point.schedule = schedule;
      point.wall_ms = stats.wall_ms;
      point.steps = stats.steps;
      point.speedup_vs_1t =
          stats.wall_ms > 0 ? base.wall_ms / stats.wall_ms : 0;
      result.points.push_back(point);
      std::fprintf(stderr, "%-24s %d threads %-11s %9.2f ms (speedup %5.2fx)\n",
                   name.c_str(), threads, ScheduleName(schedule),
                   stats.wall_ms, point.speedup_vs_1t);
    }
  }
  result.speculative_vs_barrier_8t =
      spec_8t_ms > 0 ? barrier_8t_ms / spec_8t_ms : 0;
  result.dag_vs_barrier_8t = dag_8t_ms > 0 ? barrier_8t_ms / dag_8t_ms : 0;
  std::fprintf(stderr,
               "%-24s at 8 threads vs barrier: speculative %5.2fx, "
               "dag %5.2fx\n",
               name.c_str(), result.speculative_vs_barrier_8t,
               result.dag_vs_barrier_8t);
  return result;
}

void WriteStrategy(JsonWriter& w, const char* key,
                   const StrategyStats& stats) {
  w.Key(key).BeginObject();
  w.Key("wall_ms").Double(stats.wall_ms, 3);
  w.Key("chase_steps").Int(stats.steps);
  w.Key("result_facts").Int(stats.result_facts);
  w.Key("facts_per_sec").Double(stats.facts_per_sec, 1);
  w.EndObject();
}

std::string ToJson(const std::vector<WorkloadResult>& results,
                   const std::vector<CompiledVsInterpretedResult>& compiled,
                   const std::vector<BytecodeVsTreeResult>& bytecode,
                   const std::vector<ThreadScalingResult>& scaling) {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("chase");
  w.Key("repeats").Int(kRepeats);
  // Honest-hardware annotation: the thread_scaling numbers below are only
  // meaningful up to this core count (see ROADMAP.md on the 1-core CI box).
  w.Key("nproc").Int(
      static_cast<int64_t>(std::thread::hardware_concurrency()));
  w.Key("workloads").BeginArray();
  for (const WorkloadResult& r : results) {
    w.BeginObject();
    w.Key("name").String(r.name);
    w.Key("input_facts").Int(r.input_facts);
    WriteStrategy(w, "naive", r.naive);
    WriteStrategy(w, "delta", r.delta);
    w.Key("speedup").Double(r.naive.wall_ms / r.delta.wall_ms, 2);
    w.EndObject();
  }
  w.EndArray();
  w.Key("compiled_vs_interpreted").BeginArray();
  for (const CompiledVsInterpretedResult& r : compiled) {
    w.BeginObject();
    w.Key("name").String(r.name);
    w.Key("input_facts").Int(r.input_facts);
    WriteStrategy(w, "interpreted", r.interpreted);
    WriteStrategy(w, "compiled", r.compiled);
    w.Key("speedup").Double(r.speedup, 2);
    w.EndObject();
  }
  w.EndArray();
  w.Key("bytecode_vs_tree").BeginArray();
  for (const BytecodeVsTreeResult& r : bytecode) {
    w.BeginObject();
    w.Key("name").String(r.name);
    w.Key("input_facts").Int(r.input_facts);
    WriteStrategy(w, "tree", r.tree);
    WriteStrategy(w, "bytecode", r.bytecode);
    w.Key("speedup").Double(r.speedup, 2);
    w.EndObject();
  }
  w.EndArray();
  w.Key("thread_scaling").BeginArray();
  for (const ThreadScalingResult& r : scaling) {
    w.BeginObject();
    w.Key("name").String(r.name);
    w.Key("input_facts").Int(r.input_facts);
    w.Key("points").BeginArray();
    for (const ThreadPoint& p : r.points) {
      w.BeginObject();
      w.Key("threads").Int(p.threads);
      w.Key("schedule").String(ScheduleName(p.schedule));
      w.Key("wall_ms").Double(p.wall_ms, 3);
      w.Key("chase_steps").Int(p.steps);
      w.Key("speedup_vs_1t").Double(p.speedup_vs_1t, 2);
      w.EndObject();
    }
    w.EndArray();
    w.Key("speculative_vs_barrier_8t")
        .Double(r.speculative_vs_barrier_8t, 2);
    w.Key("dag_vs_barrier_8t").Double(r.dag_vs_barrier_8t, 2);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).Take();
}

// Conservative facts/sec floor for the --quick perf smoke gate on
// pipeline_n512 under the bytecode VM. The reference single-core box
// measures ~3.0M facts/sec here, dipping to ~1.0M under heavy scheduler
// contention; the floor sits far below both so noise or a debug-ish
// build never trips it, while a real hot-path regression (e.g. the VM
// silently falling back to the tree executor, or a quadratic index)
// still does.
constexpr double kQuickFactsPerSecFloor = 500'000.0;

int Main(int argc, char** argv) {
  BenchContext ctx;
  // Perf smoke gate (tools/check.sh): pipeline_n512 under the tree
  // executor and the bytecode VM, step- and fingerprint-cross-checked by
  // RunBytecodeVsTree, then gated on an absolute throughput floor.
  if (argc > 1 && std::strcmp(argv[1], "--quick") == 0) {
    Instance start = ctx.RandomEdges(512, 2, 17);
    BytecodeVsTreeResult r = RunBytecodeVsTree(
        &ctx.symbols, "pipeline_n512", start, ctx.pipeline_tgds, {});
    if (r.bytecode.facts_per_sec < kQuickFactsPerSecFloor) {
      std::fprintf(stderr,
                   "FAIL: bytecode VM throughput %.0f facts/sec below the "
                   "smoke floor %.0f on pipeline_n512\n",
                   r.bytecode.facts_per_sec, kQuickFactsPerSecFloor);
      return 1;
    }
    std::fprintf(stderr,
                 "quick gate OK: %.0f facts/sec (floor %.0f), bytecode vs "
                 "tree speedup %.2fx\n",
                 r.bytecode.facts_per_sec, kQuickFactsPerSecFloor,
                 r.speedup);
    return 0;
  }
  std::vector<WorkloadResult> results;
  // Weakly acyclic tgd pipeline at growing scale; the largest size is the
  // headline number the README/DESIGN quote.
  for (int n : {64, 128, 256, 512}) {
    Instance start = ctx.RandomEdges(n, 2, 17);
    results.push_back(RunWorkload(ctx, "pipeline_n" + std::to_string(n),
                                  start, ctx.pipeline_tgds, {}));
  }
  // Existential tgds with a key egd merging the invented nulls.
  for (int n : {64, 128, 256}) {
    Instance start = ctx.RandomEdges(n, 2, 23);
    results.push_back(RunWorkload(ctx, "existential_egd_n" + std::to_string(n),
                                  start, ctx.existential_tgds, ctx.key_egds));
  }
  // Egd-heavy A/B for the union-find value layer: dense graph, one null
  // per edge and per H-fact, two key egds merging nearly all of them.
  for (int n : {64, 128, 256}) {
    Instance start = ctx.RandomEdges(n, 4, 29);
    results.push_back(RunWorkload(ctx, "egd_heavy_n" + std::to_string(n),
                                  start, ctx.egd_heavy_tgds,
                                  ctx.egd_heavy_egds));
  }
  // Compiled-vs-interpreted at 1 thread on each workload family's largest
  // size; pipeline_n512 is the headline point for the dependency compiler.
  std::vector<CompiledVsInterpretedResult> compiled;
  {
    Instance start = ctx.RandomEdges(512, 2, 17);
    compiled.push_back(RunCompiledVsInterpreted(
        &ctx.symbols, "pipeline_n512", start, ctx.pipeline_tgds, {}));
  }
  {
    Instance start = ctx.RandomEdges(256, 2, 23);
    compiled.push_back(RunCompiledVsInterpreted(
        &ctx.symbols, "existential_egd_n256", start, ctx.existential_tgds,
        ctx.key_egds));
  }
  {
    Instance start = ctx.RandomEdges(256, 4, 29);
    compiled.push_back(RunCompiledVsInterpreted(
        &ctx.symbols, "egd_heavy_n256", start, ctx.egd_heavy_tgds,
        ctx.egd_heavy_egds));
  }
  // Bytecode-vs-tree at 1 thread on the same three points as
  // compiled_vs_interpreted; pipeline_n512 is the headline number for the
  // match VM (and what --quick gates on).
  std::vector<BytecodeVsTreeResult> bytecode;
  {
    Instance start = ctx.RandomEdges(512, 2, 17);
    bytecode.push_back(RunBytecodeVsTree(&ctx.symbols, "pipeline_n512",
                                         start, ctx.pipeline_tgds, {}));
  }
  {
    Instance start = ctx.RandomEdges(256, 2, 23);
    bytecode.push_back(RunBytecodeVsTree(&ctx.symbols, "existential_egd_n256",
                                         start, ctx.existential_tgds,
                                         ctx.key_egds));
  }
  {
    Instance start = ctx.RandomEdges(256, 4, 29);
    bytecode.push_back(RunBytecodeVsTree(&ctx.symbols, "egd_heavy_n256",
                                         start, ctx.egd_heavy_tgds,
                                         ctx.egd_heavy_egds));
  }
  // Thread scaling on the two headline workloads, plus a wide
  // disjoint-dependency workload where consecutive tgds touch disjoint
  // relations, so the speculative engine's cross-dependency pipelining
  // actually overlaps collect with apply (on the two headline workloads
  // the dependencies share relations and pipelining never engages).
  std::vector<ThreadScalingResult> scaling;
  {
    Instance start = ctx.RandomEdges(512, 2, 17);
    scaling.push_back(RunThreadScaling(&ctx.symbols, "pipeline_n512", start,
                                       ctx.pipeline_tgds, {}));
  }
  {
    Instance start = ctx.RandomEdges(256, 4, 29);
    scaling.push_back(RunThreadScaling(&ctx.symbols, "egd_heavy_n256", start,
                                       ctx.egd_heavy_tgds,
                                       ctx.egd_heavy_egds));
  }
  {
    // Heads keyed on (x,y): nearly every collected trigger fires, so the
    // apply phase is insert-heavy — the case speculative instantiation
    // (workers pre-build the head tuples) and pipelining (the next
    // dependency's collect runs during this one's inserts) target. A
    // head keyed on x alone would fire once per node and collect ~16
    // triggers per fire, wasting the speculative instantiation.
    Schema wide;
    SymbolTable wide_symbols;
    std::string rules;
    for (int i = 0; i < 4; ++i) {
      std::string a = "A" + std::to_string(i), b = "B" + std::to_string(i);
      PDX_CHECK(wide.AddRelation(a, 2).ok());
      PDX_CHECK(wide.AddRelation(b, 3).ok());
      rules += a + "(x,z) & " + a + "(z,y) -> exists w: " + b + "(x,y,w). ";
    }
    auto deps = ParseDependencies(rules, wide, &wide_symbols);
    PDX_CHECK(deps.ok());
    Rng rng(37);
    Instance start(&wide);
    for (int group = 0; group < 4; ++group) {
      for (int i = 0; i < 2048; ++i) {
        Value u = wide_symbols.InternConstant(
            "n" + std::to_string(rng.UniformInt(512)));
        Value v = wide_symbols.InternConstant(
            "n" + std::to_string(rng.UniformInt(512)));
        start.AddFact(static_cast<RelationId>(2 * group), {u, v});
      }
    }
    scaling.push_back(RunThreadScaling(&wide_symbols, "disjoint_4x_n512",
                                       start, deps->tgds, {}));
  }

  std::string path = argc > 1 ? argv[1] : "BENCH_chase.json";
  std::string json = ToJson(results, compiled, bytecode, scaling);
  std::FILE* f = std::fopen(path.c_str(), "w");
  PDX_CHECK(f != nullptr) << "cannot open " << path;
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace pdx

int main(int argc, char** argv) { return pdx::Main(argc, argv); }
