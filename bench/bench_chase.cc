// Chase engine A/B bench: runs the same workloads through the naive
// full-rescan restricted chase and the delta-driven one, and writes the
// results as machine-readable JSON (BENCH_chase.json) so the speedup is
// trackable across commits.
//
// Per workload and strategy it reports wall time (best of `kRepeats`),
// chase steps, result facts, and derived facts per second; per workload it
// reports the naive/delta speedup. Strategies are also cross-checked for
// fingerprint agreement, so a run doubles as a coarse correctness gate.
//
// Usage: bench_chase [output.json]   (default BENCH_chase.json in cwd)

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "logic/parser.h"
#include "workload/random.h"

namespace pdx {
namespace {

constexpr int kRepeats = 3;

struct StrategyStats {
  double wall_ms = 0;
  int64_t steps = 0;
  int64_t result_facts = 0;
  double facts_per_sec = 0;
  uint64_t fingerprint = 0;
};

struct WorkloadResult {
  std::string name;
  int64_t input_facts = 0;
  StrategyStats naive;
  StrategyStats delta;
};

struct BenchContext {
  Schema schema;
  SymbolTable symbols;
  std::vector<Tgd> pipeline_tgds;
  std::vector<Tgd> existential_tgds;
  std::vector<Egd> key_egds;

  BenchContext() {
    PDX_CHECK(schema.AddRelation("E", 2).ok());
    PDX_CHECK(schema.AddRelation("H", 2).ok());
    PDX_CHECK(schema.AddRelation("F", 2).ok());
    auto deps = ParseDependencies(
        "E(x,z) & E(z,y) -> H(x,y)."
        "H(x,y) -> exists w: F(y,w).",
        schema, &symbols);
    PDX_CHECK(deps.ok());
    pipeline_tgds = std::move(deps).value().tgds;
    auto deps_ex = ParseDependencies("E(x,y) -> exists z: H(x,z). "
                                     "H(x,y) -> exists w: F(y,w).",
                                     schema, &symbols);
    PDX_CHECK(deps_ex.ok());
    existential_tgds = std::move(deps_ex).value().tgds;
    auto deps2 =
        ParseDependencies("H(x,y) & H(x,z) -> y = z.", schema, &symbols);
    PDX_CHECK(deps2.ok());
    key_egds = std::move(deps2).value().egds;
  }

  // A sparse random E-graph with `n` nodes and ~2n edges.
  Instance RandomEdges(int n, uint64_t seed) {
    Rng rng(seed);
    Instance instance(&schema);
    for (int i = 0; i < 2 * n; ++i) {
      Value u =
          symbols.InternConstant("n" + std::to_string(rng.UniformInt(n)));
      Value v =
          symbols.InternConstant("n" + std::to_string(rng.UniformInt(n)));
      instance.AddFact(0, {u, v});
    }
    return instance;
  }
};

StrategyStats RunOne(BenchContext& ctx, const Instance& start,
                     const std::vector<Tgd>& tgds,
                     const std::vector<Egd>& egds, ChaseStrategy strategy) {
  ChaseOptions options;
  options.strategy = strategy;
  options.max_steps = 10'000'000;
  StrategyStats stats;
  for (int rep = 0; rep < kRepeats; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    ChaseResult result = Chase(start, tgds, egds, &ctx.symbols, options);
    auto t1 = std::chrono::steady_clock::now();
    PDX_CHECK(result.outcome == ChaseOutcome::kSuccess);
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || ms < stats.wall_ms) stats.wall_ms = ms;
    stats.steps = result.steps;
    stats.result_facts = static_cast<int64_t>(result.instance.fact_count());
    if (rep == 0) stats.fingerprint = result.instance.CanonicalFingerprint();
  }
  // Throughput in derived facts (result minus input) per second.
  double derived =
      static_cast<double>(stats.result_facts) -
      static_cast<double>(start.fact_count());
  stats.facts_per_sec =
      stats.wall_ms > 0 ? derived / (stats.wall_ms / 1000.0) : 0;
  return stats;
}

WorkloadResult RunWorkload(BenchContext& ctx, const std::string& name,
                           const Instance& start,
                           const std::vector<Tgd>& tgds,
                           const std::vector<Egd>& egds) {
  WorkloadResult result;
  result.name = name;
  result.input_facts = static_cast<int64_t>(start.fact_count());
  result.naive =
      RunOne(ctx, start, tgds, egds, ChaseStrategy::kRestrictedNaive);
  result.delta = RunOne(ctx, start, tgds, egds, ChaseStrategy::kRestricted);
  PDX_CHECK(result.naive.fingerprint == result.delta.fingerprint)
      << "strategy disagreement on workload " << name;
  std::fprintf(stderr,
               "%-24s naive %9.2f ms (%6lld steps)   delta %9.2f ms "
               "(%6lld steps)   speedup %5.2fx\n",
               name.c_str(), result.naive.wall_ms,
               static_cast<long long>(result.naive.steps),
               result.delta.wall_ms,
               static_cast<long long>(result.delta.steps),
               result.naive.wall_ms / result.delta.wall_ms);
  return result;
}

void AppendStrategyJson(std::string* out, const char* key,
                        const StrategyStats& stats) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "      \"%s\": {\"wall_ms\": %.3f, \"chase_steps\": %lld, "
                "\"result_facts\": %lld, \"facts_per_sec\": %.1f}",
                key, stats.wall_ms, static_cast<long long>(stats.steps),
                static_cast<long long>(stats.result_facts),
                stats.facts_per_sec);
  *out += buffer;
}

std::string ToJson(const std::vector<WorkloadResult>& results) {
  std::string out = "{\n  \"bench\": \"chase\",\n  \"repeats\": " +
                    std::to_string(kRepeats) + ",\n  \"workloads\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer),
                  "    {\n      \"name\": \"%s\",\n"
                  "      \"input_facts\": %lld,\n",
                  r.name.c_str(), static_cast<long long>(r.input_facts));
    out += buffer;
    AppendStrategyJson(&out, "naive", r.naive);
    out += ",\n";
    AppendStrategyJson(&out, "delta", r.delta);
    std::snprintf(buffer, sizeof(buffer),
                  ",\n      \"speedup\": %.2f\n    }",
                  r.naive.wall_ms / r.delta.wall_ms);
    out += buffer;
    out += (i + 1 < results.size()) ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

int Main(int argc, char** argv) {
  BenchContext ctx;
  std::vector<WorkloadResult> results;
  // Weakly acyclic tgd pipeline at growing scale; the largest size is the
  // headline number the README/DESIGN quote.
  for (int n : {64, 128, 256, 512}) {
    Instance start = ctx.RandomEdges(n, 17);
    results.push_back(RunWorkload(ctx, "pipeline_n" + std::to_string(n),
                                  start, ctx.pipeline_tgds, {}));
  }
  // Existential tgds with a key egd merging the invented nulls: exercises
  // substitution invalidation (only rewritten relations re-scanned).
  for (int n : {64, 128, 256}) {
    Instance start = ctx.RandomEdges(n, 23);
    results.push_back(RunWorkload(ctx, "existential_egd_n" + std::to_string(n),
                                  start, ctx.existential_tgds, ctx.key_egds));
  }

  std::string path = argc > 1 ? argv[1] : "BENCH_chase.json";
  std::string json = ToJson(results);
  std::FILE* f = std::fopen(path.c_str(), "w");
  PDX_CHECK(f != nullptr) << "cannot open " << path;
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace pdx

int main(int argc, char** argv) { return pdx::Main(argc, argv); }
