// Experiment E1 (Lemma 1 / [8]): chase cost and chase length scale
// polynomially in the instance size for weakly acyclic dependency sets.
// Series reported:
//   * standard chase over a 3-stage weakly acyclic pipeline,
//   * chase with key egds merging invented nulls,
//   * solution-aware chase length vs |K| (the Lemma 1 bound).

#include <benchmark/benchmark.h>

#include "chase/chase.h"
#include "chase/solution_aware_chase.h"
#include "logic/parser.h"
#include "workload/random.h"

namespace pdx {
namespace {

// Fixture state shared by the chase benchmarks: schema E/2, H/2, F/2.
struct ChaseBenchContext {
  Schema schema;
  SymbolTable symbols;
  std::vector<Tgd> pipeline_tgds;
  std::vector<Tgd> existential_tgds;
  std::vector<Egd> key_egds;

  ChaseBenchContext() {
    PDX_CHECK(schema.AddRelation("E", 2).ok());
    PDX_CHECK(schema.AddRelation("H", 2).ok());
    PDX_CHECK(schema.AddRelation("F", 2).ok());
    auto deps = ParseDependencies(
        "E(x,z) & E(z,y) -> H(x,y)."
        "H(x,y) -> exists w: F(y,w).",
        schema, &symbols);
    PDX_CHECK(deps.ok());
    pipeline_tgds = std::move(deps).value().tgds;
    auto deps2 = ParseDependencies("E(x,y) -> exists z: H(x,z).", schema,
                                   &symbols);
    PDX_CHECK(deps2.ok());
    existential_tgds = std::move(deps2).value().tgds;
    auto deps3 =
        ParseDependencies("H(x,y) & H(x,z) -> y = z.", schema, &symbols);
    PDX_CHECK(deps3.ok());
    key_egds = std::move(deps3).value().egds;
  }

  // A sparse random E-graph with `n` nodes and ~2n edges.
  Instance RandomEdges(int n, uint64_t seed) {
    Rng rng(seed);
    Instance instance(&schema);
    for (int i = 0; i < 2 * n; ++i) {
      Value u = symbols.InternConstant("n" + std::to_string(
                                                 rng.UniformInt(n)));
      Value v = symbols.InternConstant("n" + std::to_string(
                                                 rng.UniformInt(n)));
      instance.AddFact(0, {u, v});
    }
    return instance;
  }
};

ChaseBenchContext& Context() {
  static ChaseBenchContext* context = new ChaseBenchContext();
  return *context;
}

void BM_ChaseWeaklyAcyclicPipeline(benchmark::State& state) {
  ChaseBenchContext& ctx = Context();
  Instance start = ctx.RandomEdges(static_cast<int>(state.range(0)), 17);
  int64_t steps = 0;
  int64_t result_size = 0;
  for (auto _ : state) {
    ChaseResult result = Chase(start, ctx.pipeline_tgds, &ctx.symbols);
    PDX_CHECK(result.outcome == ChaseOutcome::kSuccess);
    steps = result.steps;
    result_size = static_cast<int64_t>(result.instance.fact_count());
    benchmark::DoNotOptimize(result.instance);
  }
  state.counters["input_facts"] =
      static_cast<double>(start.fact_count());
  state.counters["chase_steps"] = static_cast<double>(steps);
  state.counters["result_facts"] = static_cast<double>(result_size);
}
BENCHMARK(BM_ChaseWeaklyAcyclicPipeline)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_ChaseWithKeyEgds(benchmark::State& state) {
  ChaseBenchContext& ctx = Context();
  Instance start = ctx.RandomEdges(static_cast<int>(state.range(0)), 23);
  int64_t steps = 0;
  for (auto _ : state) {
    // The existential tgd invents one null per E-source node; the key egd
    // then merges all of a node's H-successors into one.
    ChaseResult result =
        Chase(start, ctx.existential_tgds, ctx.key_egds, &ctx.symbols);
    PDX_CHECK(result.outcome == ChaseOutcome::kSuccess);
    steps = result.steps;
    benchmark::DoNotOptimize(result.instance);
  }
  state.counters["input_facts"] = static_cast<double>(start.fact_count());
  state.counters["chase_steps"] = static_cast<double>(steps);
}
BENCHMARK(BM_ChaseWithKeyEgds)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_SolutionAwareChaseLength(benchmark::State& state) {
  ChaseBenchContext& ctx = Context();
  int n = static_cast<int>(state.range(0));
  Instance start = ctx.RandomEdges(n, 29);
  // Build a solution by chasing normally first.
  ChaseResult chased = Chase(start, ctx.pipeline_tgds, &ctx.symbols);
  PDX_CHECK(chased.outcome == ChaseOutcome::kSuccess);
  const Instance& solution = chased.instance;
  int64_t steps = 0;
  for (auto _ : state) {
    ChaseResult result =
        SolutionAwareChase(start, ctx.pipeline_tgds, {}, solution);
    PDX_CHECK(result.outcome == ChaseOutcome::kSuccess);
    steps = result.steps;
    benchmark::DoNotOptimize(result.instance);
  }
  // Lemma 1: the chase length is polynomial in |K|; here every step adds a
  // solution fact, so steps <= |solution| - |start|.
  state.counters["K_facts"] = static_cast<double>(start.fact_count());
  state.counters["chase_steps"] = static_cast<double>(steps);
  state.counters["lemma1_bound"] =
      static_cast<double>(solution.fact_count() - start.fact_count());
}
BENCHMARK(BM_SolutionAwareChaseLength)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pdx

BENCHMARK_MAIN();
