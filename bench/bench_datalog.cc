// Substrate benchmark: the semi-naive Datalog engine used for PDMS
// definitional mappings ([14]). Transitive closure over paths and random
// graphs; the shapes of interest are (a) polynomial growth and (b) the
// round count tracking the graph diameter, both hallmarks of semi-naive
// evaluation.

#include <benchmark/benchmark.h>

#include "logic/datalog.h"
#include "workload/graph_gen.h"
#include "workload/random.h"

namespace pdx {
namespace {

struct DatalogBenchContext {
  Schema schema;
  SymbolTable symbols;
  DatalogProgram closure;

  DatalogBenchContext() {
    PDX_CHECK(schema.AddRelation("E", 2).ok());
    PDX_CHECK(schema.AddRelation("T", 2).ok());
    auto program = ParseDatalogProgram(
        "T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z).", schema, &symbols);
    PDX_CHECK(program.ok());
    closure = std::move(program).value();
  }

  Instance GraphInstance(const Graph& g) {
    Instance instance(&schema);
    for (const auto& [u, v] : g.edges) {
      instance.AddFact(0, {symbols.InternConstant("n" + std::to_string(u)),
                           symbols.InternConstant("n" + std::to_string(v))});
    }
    return instance;
  }
};

DatalogBenchContext& Context() {
  static DatalogBenchContext* context = new DatalogBenchContext();
  return *context;
}

void BM_TransitiveClosurePath(benchmark::State& state) {
  DatalogBenchContext& ctx = Context();
  int n = static_cast<int>(state.range(0));
  Instance input = ctx.GraphInstance(PathGraph(n));
  DatalogStats stats;
  for (auto _ : state) {
    Instance fixpoint = EvaluateDatalog(ctx.closure, input, &stats);
    benchmark::DoNotOptimize(fixpoint);
  }
  state.counters["derived"] = static_cast<double>(stats.derived_facts);
  state.counters["rounds"] = static_cast<double>(stats.iterations);
}
BENCHMARK(BM_TransitiveClosurePath)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_TransitiveClosureRandomGraph(benchmark::State& state) {
  DatalogBenchContext& ctx = Context();
  int n = static_cast<int>(state.range(0));
  Rng rng(77);
  Instance input = ctx.GraphInstance(ErdosRenyi(n, 4.0 / n, &rng));
  DatalogStats stats;
  for (auto _ : state) {
    Instance fixpoint = EvaluateDatalog(ctx.closure, input, &stats);
    benchmark::DoNotOptimize(fixpoint);
  }
  state.counters["derived"] = static_cast<double>(stats.derived_facts);
  state.counters["rounds"] = static_cast<double>(stats.iterations);
}
BENCHMARK(BM_TransitiveClosureRandomGraph)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pdx

BENCHMARK_MAIN();
