// Ablation experiments for the engineering choices DESIGN.md calls out:
//   A1  restricted naive vs. semi-naive (incremental) trigger search —
//       the re-scan cost dominates chase time at scale;
//   A2  restricted vs. oblivious chase — result-size and null blow-up of
//       firing satisfied triggers;
//   A3  the C_tract solver built on each chase variant (end-to-end view).

#include <benchmark/benchmark.h>

#include "chase/chase.h"
#include "logic/parser.h"
#include "workload/random.h"

namespace pdx {
namespace {

struct AblationContext {
  Schema schema;
  SymbolTable symbols;
  std::vector<Tgd> pipeline;
  std::vector<Tgd> existential;
  std::vector<Egd> key;

  AblationContext() {
    PDX_CHECK(schema.AddRelation("E", 2).ok());
    PDX_CHECK(schema.AddRelation("H", 2).ok());
    PDX_CHECK(schema.AddRelation("F", 2).ok());
    auto deps = ParseDependencies(
        "E(x,z) & E(z,y) -> H(x,y). H(x,y) -> F(x,y).", schema, &symbols);
    PDX_CHECK(deps.ok());
    pipeline = std::move(deps).value().tgds;
    auto deps2 = ParseDependencies("E(x,y) -> exists z: H(x,z).", schema,
                                   &symbols);
    PDX_CHECK(deps2.ok());
    existential = std::move(deps2).value().tgds;
    auto deps3 =
        ParseDependencies("H(x,y) & H(x,z) -> y = z.", schema, &symbols);
    PDX_CHECK(deps3.ok());
    key = std::move(deps3).value().egds;
  }

  Instance RandomEdges(int n, uint64_t seed) {
    Rng rng(seed);
    Instance instance(&schema);
    for (int i = 0; i < 2 * n; ++i) {
      Value u = symbols.InternConstant("n" + std::to_string(
                                                 rng.UniformInt(n)));
      Value v = symbols.InternConstant("n" + std::to_string(
                                                 rng.UniformInt(n)));
      instance.AddFact(0, {u, v});
    }
    return instance;
  }
};

AblationContext& Context() {
  static AblationContext* context = new AblationContext();
  return *context;
}

// ---- A1: naive vs. incremental trigger search --------------------------

void BM_A1_ChaseNaive(benchmark::State& state) {
  AblationContext& ctx = Context();
  Instance start = ctx.RandomEdges(static_cast<int>(state.range(0)), 101);
  ChaseOptions options;
  options.strategy = ChaseStrategy::kRestrictedNaive;
  int64_t steps = 0;
  for (auto _ : state) {
    ChaseResult result = Chase(start, ctx.pipeline, {}, &ctx.symbols,
                               options);
    PDX_CHECK(result.outcome == ChaseOutcome::kSuccess);
    steps = result.steps;
    benchmark::DoNotOptimize(result.instance);
  }
  state.counters["chase_steps"] = static_cast<double>(steps);
}
BENCHMARK(BM_A1_ChaseNaive)
    ->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_A1_ChaseIncremental(benchmark::State& state) {
  AblationContext& ctx = Context();
  Instance start = ctx.RandomEdges(static_cast<int>(state.range(0)), 101);
  ChaseOptions options;
  options.strategy = ChaseStrategy::kRestricted;
  int64_t steps = 0;
  for (auto _ : state) {
    ChaseResult result =
        Chase(start, ctx.pipeline, {}, &ctx.symbols, options);
    PDX_CHECK(result.outcome == ChaseOutcome::kSuccess);
    steps = result.steps;
    benchmark::DoNotOptimize(result.instance);
  }
  state.counters["chase_steps"] = static_cast<double>(steps);
}
BENCHMARK(BM_A1_ChaseIncremental)
    ->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

// ---- A2: restricted vs. oblivious --------------------------------------

void BM_A2_Restricted(benchmark::State& state) {
  AblationContext& ctx = Context();
  Instance start = ctx.RandomEdges(static_cast<int>(state.range(0)), 103);
  int64_t nulls = 0;
  int64_t facts = 0;
  for (auto _ : state) {
    ChaseResult result =
        Chase(start, ctx.existential, ctx.key, &ctx.symbols);
    PDX_CHECK(result.outcome == ChaseOutcome::kSuccess);
    nulls = result.nulls_created;
    facts = static_cast<int64_t>(result.instance.fact_count());
    benchmark::DoNotOptimize(result.instance);
  }
  state.counters["nulls"] = static_cast<double>(nulls);
  state.counters["result_facts"] = static_cast<double>(facts);
}
BENCHMARK(BM_A2_Restricted)
    ->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_A2_Oblivious(benchmark::State& state) {
  AblationContext& ctx = Context();
  Instance start = ctx.RandomEdges(static_cast<int>(state.range(0)), 103);
  ChaseOptions options;
  options.strategy = ChaseStrategy::kOblivious;
  int64_t nulls = 0;
  int64_t facts = 0;
  for (auto _ : state) {
    ChaseResult result =
        Chase(start, ctx.existential, ctx.key, &ctx.symbols, options);
    PDX_CHECK(result.outcome == ChaseOutcome::kSuccess);
    nulls = result.nulls_created;
    facts = static_cast<int64_t>(result.instance.fact_count());
    benchmark::DoNotOptimize(result.instance);
  }
  state.counters["nulls"] = static_cast<double>(nulls);
  state.counters["result_facts"] = static_cast<double>(facts);
}
BENCHMARK(BM_A2_Oblivious)
    ->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pdx

BENCHMARK_MAIN();
