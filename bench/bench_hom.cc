// Experiment E8: the homomorphism engine is the inner loop of the PTIME
// algorithm (one check per block of I_can). Its cost is exponential only
// in the per-block null count (constant inside C_tract, per Theorem 6).
// Series:
//   * chain blocks (tree-like patterns): cheap even with many nulls,
//   * clique-pattern blocks into sparse graphs: cost explodes with the
//     null count — exactly why Theorem 6's constant bound matters,
//   * null-free blocks: plain subset checks.

#include <benchmark/benchmark.h>

#include "hom/core.h"
#include "hom/instance_hom.h"
#include "workload/graph_gen.h"
#include "workload/random.h"

namespace pdx {
namespace {

struct HomBenchContext {
  Schema schema;
  SymbolTable symbols;

  HomBenchContext() { PDX_CHECK(schema.AddRelation("E", 2).ok()); }

  Instance GraphInstance(const Graph& g) {
    Instance instance(&schema);
    for (const auto& [u, v] : g.edges) {
      Value a = symbols.InternConstant("g" + std::to_string(u));
      Value b = symbols.InternConstant("g" + std::to_string(v));
      instance.AddFact(0, {a, b});
      instance.AddFact(0, {b, a});
    }
    return instance;
  }
};

HomBenchContext& Context() {
  static HomBenchContext* context = new HomBenchContext();
  return *context;
}

// A chain pattern n0 - n1 - ... - nL of nulls.
Instance ChainPattern(int length, SymbolTable* symbols,
                      const Schema* schema) {
  Instance pattern(schema);
  Value prev = symbols->FreshNull();
  for (int i = 0; i < length; ++i) {
    Value next = symbols->FreshNull();
    pattern.AddFact(0, {prev, next});
    prev = next;
  }
  return pattern;
}

// A clique pattern on k nulls (every ordered pair).
Instance CliquePattern(int k, SymbolTable* symbols, const Schema* schema) {
  Instance pattern(schema);
  std::vector<Value> nulls;
  for (int i = 0; i < k; ++i) nulls.push_back(symbols->FreshNull());
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      if (i != j) pattern.AddFact(0, {nulls[i], nulls[j]});
    }
  }
  return pattern;
}

void BM_ChainPatternIntoRandomGraph(benchmark::State& state) {
  HomBenchContext& ctx = Context();
  Rng rng(71);
  Instance target = ctx.GraphInstance(ErdosRenyi(40, 0.15, &rng));
  Instance pattern = ChainPattern(static_cast<int>(state.range(0)),
                                  &ctx.symbols, &ctx.schema);
  bool found = false;
  for (auto _ : state) {
    auto h = FindInstanceHomomorphism(pattern, target);
    found = h.has_value();
    benchmark::DoNotOptimize(h);
  }
  state.counters["pattern_nulls"] = static_cast<double>(state.range(0) + 1);
  state.counters["found"] = found ? 1 : 0;
}
BENCHMARK(BM_ChainPatternIntoRandomGraph)
    ->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_CliquePatternIntoTriangleFreeGraph(benchmark::State& state) {
  HomBenchContext& ctx = Context();
  // Bipartite-by-parity graph: no triangles, so clique patterns of size
  // >= 3 cannot embed and the search must exhaust.
  Graph g;
  g.node_count = 24;
  for (int u = 0; u < g.node_count; ++u) {
    for (int v = u + 1; v < g.node_count; ++v) {
      if ((u + v) % 2 == 1) g.edges.emplace_back(u, v);
    }
  }
  Instance target = ctx.GraphInstance(g);
  Instance pattern = CliquePattern(static_cast<int>(state.range(0)),
                                   &ctx.symbols, &ctx.schema);
  for (auto _ : state) {
    auto h = FindInstanceHomomorphism(pattern, target);
    PDX_CHECK(!h.has_value());
    benchmark::DoNotOptimize(h);
  }
  state.counters["pattern_nulls"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CliquePatternIntoTriangleFreeGraph)
    ->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond);

void BM_NullFreeBlockSubsetCheck(benchmark::State& state) {
  HomBenchContext& ctx = Context();
  Rng rng(73);
  int n = static_cast<int>(state.range(0));
  Instance target = ctx.GraphInstance(CompleteGraph(n));
  // The pattern is a random subset of the target's facts: null-free block.
  Instance pattern(&ctx.schema);
  target.ForEachFact([&](const Fact& f) {
    if (rng.Bernoulli(0.5)) pattern.AddFact(f);
  });
  for (auto _ : state) {
    auto h = FindInstanceHomomorphism(pattern, target);
    PDX_CHECK(h.has_value());
    benchmark::DoNotOptimize(h);
  }
  state.counters["pattern_facts"] =
      static_cast<double>(pattern.fact_count());
}
BENCHMARK(BM_NullFreeBlockSubsetCheck)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

// Core computation ([7]) on instances with redundant null facts: each
// ground edge is shadowed by one null fact that folds onto it, so the
// core halves the instance. Cost tracks the retraction count.
void BM_CoreOfRedundantInstance(benchmark::State& state) {
  HomBenchContext& ctx = Context();
  int n = static_cast<int>(state.range(0));
  Instance instance(&ctx.schema);
  for (int i = 0; i < n; ++i) {
    Value a = ctx.symbols.InternConstant("ca" + std::to_string(i));
    Value b = ctx.symbols.InternConstant("cb" + std::to_string(i));
    instance.AddFact(0, {a, b});
    instance.AddFact(0, {a, ctx.symbols.FreshNull()});  // folds onto (a,b)
  }
  CoreStats stats;
  for (auto _ : state) {
    Instance core = ComputeCore(instance, &stats);
    PDX_CHECK(core.fact_count() == static_cast<size_t>(n));
    benchmark::DoNotOptimize(core);
  }
  state.counters["facts_removed"] = static_cast<double>(stats.facts_removed);
}
BENCHMARK(BM_CoreOfRedundantInstance)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_BlockDecomposition(benchmark::State& state) {
  HomBenchContext& ctx = Context();
  int blocks = static_cast<int>(state.range(0));
  Instance instance(&ctx.schema);
  // Many small independent blocks of 3 facts / 3 nulls each.
  for (int b = 0; b < blocks; ++b) {
    Value n1 = ctx.symbols.FreshNull();
    Value n2 = ctx.symbols.FreshNull();
    Value n3 = ctx.symbols.FreshNull();
    instance.AddFact(0, {n1, n2});
    instance.AddFact(0, {n2, n3});
    instance.AddFact(0, {n3, n1});
  }
  for (auto _ : state) {
    auto decomposition = DecomposeIntoBlocks(instance);
    PDX_CHECK(static_cast<int>(decomposition.size()) == blocks);
    benchmark::DoNotOptimize(decomposition);
  }
  state.counters["facts"] = static_cast<double>(instance.fact_count());
}
BENCHMARK(BM_BlockDecomposition)
    ->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pdx

BENCHMARK_MAIN();
