// Serving bench: starts an in-process pdxd (Unix socket transport, real
// wire protocol — the same bytes a remote client would send) and drives it
// with concurrent client threads issuing a read-heavy verb mix, then
// writes BENCH_serve.json with the throughput, per-verb latency
// percentiles and the batch coalescing histogram.
//
// What the numbers mean:
//   - qps / per-verb p50/p99: end-to-end over the socket, including JSON
//     parse, dispatch, solve and response marshalling.
//   - batch_size histogram + writes_per_batch: the single-writer admission
//     queue's coalescing under concurrent writers. writes_per_batch > 1
//     means N compatible writes cost one chase round.
//   - read QPS is measured against a concurrently advancing generation
//     chain, so it demonstrates that snapshot reads never block on the
//     writer.
//
// Usage: bench_serve [output.json]   (default BENCH_serve.json in cwd)
//        bench_serve --quick         (short run, smoke gate: exits nonzero
//                                     if any request fails or coalescing
//                                     never happened under write pressure)

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/metrics.h"
#include "serve/server.h"

namespace pdx {
namespace serve {
namespace {

// Example 1 of the paper plus a key egd: writes create chase work and can
// conflict, reads have certain answers to compute.
constexpr char kSetting[] =
    "[source]\n"
    "E/2\n"
    "[target]\n"
    "H/2\n"
    "[st]\n"
    "E(x,z) & E(z,y) -> H(x,y).\n"
    "[ts]\n"
    "H(x,y) -> E(x,y).\n";

struct VerbStats {
  std::string verb;
  std::vector<int64_t> latencies_us;  // merged across client threads

  int64_t Percentile(double p) const {
    if (latencies_us.empty()) return 0;
    std::vector<int64_t> sorted = latencies_us;
    std::sort(sorted.begin(), sorted.end());
    size_t index = static_cast<size_t>(p * (sorted.size() - 1));
    return sorted[index];
  }
};

struct RunResult {
  double wall_s = 0;
  int64_t requests = 0;
  int64_t errors = 0;
  double qps = 0;
  std::vector<VerbStats> verbs;
};

// One client thread's share of the mix. Each client keeps its own
// connection (the protocol is pipelined per connection, serial per
// client, like real callers).
struct ClientShare {
  std::vector<std::pair<std::string, std::vector<int64_t>>> latencies;
  int64_t errors = 0;
};

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string WriteRequest(int client, int seq) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "{\"verb\":\"write\",\"tenant\":\"%s\","
                "\"facts\":\"E(c%d_%d, c%d_%d).\"}",
                "%TENANT%", client, seq, client, seq + 1);
  return buffer;
}

// The verb mix, cycled per request index: read-heavy with a steady write
// stream so coalescing is observable.
std::string RequestFor(const std::string& tenant, int client, int index) {
  std::string request;
  switch (index % 8) {
    case 0:
    case 1:
      request = WriteRequest(client, index);
      break;
    case 2:
    case 3:
      request = "{\"verb\":\"exists\",\"tenant\":\"%TENANT%\"}";
      break;
    case 4:
    case 5:
      request =
          "{\"verb\":\"certain\",\"tenant\":\"%TENANT%\","
          "\"query\":\"q(x,y) :- H(x,y).\"}";
      break;
    case 6:
      request =
          "{\"verb\":\"contains\",\"tenant\":\"%TENANT%\","
          "\"facts\":\"H(c0_0, c0_2).\"}";
      break;
    default:
      request = "{\"verb\":\"ping\"}";
      break;
  }
  size_t at = request.find("%TENANT%");
  if (at != std::string::npos) request.replace(at, 8, tenant);
  return request;
}

const char* VerbOf(int index) {
  switch (index % 8) {
    case 0:
    case 1:
      return "write";
    case 2:
    case 3:
      return "exists";
    case 4:
    case 5:
      return "certain";
    case 6:
      return "contains";
    default:
      return "ping";
  }
}

ClientShare DriveClient(const std::string& address, const std::string& tenant,
                        int client, int requests) {
  ClientShare share;
  share.latencies = {{"write", {}}, {"exists", {}},   {"certain", {}},
                     {"contains", {}}, {"ping", {}}};
  auto connection = Client::Connect(address);
  if (!connection.ok()) {
    share.errors = requests;
    return share;
  }
  for (int i = 0; i < requests; ++i) {
    std::string request = RequestFor(tenant, client, i);
    int64_t start = NowUs();
    auto response = connection->CallRaw(request);
    int64_t elapsed = NowUs() - start;
    if (!response.ok() || !response->GetBool("ok")) {
      ++share.errors;
      continue;
    }
    const char* verb = VerbOf(i);
    for (auto& [name, values] : share.latencies) {
      if (name == verb) {
        values.push_back(elapsed);
        break;
      }
    }
  }
  return share;
}

RunResult RunMix(const std::string& address, const std::string& tenant,
                 int clients, int requests_per_client) {
  std::vector<ClientShare> shares(clients);
  std::vector<std::thread> threads;
  auto started = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      shares[c] = DriveClient(address, tenant, c, requests_per_client);
    });
  }
  for (std::thread& t : threads) t.join();
  auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - started);

  RunResult result;
  result.wall_s = elapsed.count() / 1e6;
  for (const char* verb : {"write", "exists", "certain", "contains", "ping"}) {
    result.verbs.push_back(VerbStats{verb, {}});
  }
  for (const ClientShare& share : shares) {
    result.errors += share.errors;
    for (const auto& [verb, values] : share.latencies) {
      for (VerbStats& stats : result.verbs) {
        if (stats.verb == verb) {
          stats.latencies_us.insert(stats.latencies_us.end(), values.begin(),
                                    values.end());
          break;
        }
      }
    }
  }
  result.requests = static_cast<int64_t>(clients) * requests_per_client;
  result.qps = result.wall_s > 0 ? result.requests / result.wall_s : 0;
  return result;
}

std::string ToJson(const RunResult& run, int clients, int requests_per_client,
                   int64_t writes, int64_t batches, int64_t burst_writes,
                   int64_t burst_batches,
                   const obs::HistogramData& batch_hist) {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("serve");
  w.Key("nproc").Int(
      static_cast<int64_t>(std::thread::hardware_concurrency()));
  w.Key("clients").Int(clients);
  w.Key("requests_per_client").Int(requests_per_client);
  w.Key("wall_s").Double(run.wall_s, 3);
  w.Key("requests").Int(run.requests);
  w.Key("qps").Double(run.qps, 1);
  w.Key("errors").Int(run.errors);
  w.Key("verbs").BeginArray();
  for (const VerbStats& stats : run.verbs) {
    w.BeginObject();
    w.Key("verb").String(stats.verb);
    w.Key("count").Int(static_cast<int64_t>(stats.latencies_us.size()));
    w.Key("p50_us").Int(stats.Percentile(0.50));
    w.Key("p99_us").Int(stats.Percentile(0.99));
    w.EndObject();
  }
  w.EndArray();
  w.Key("write_requests").Int(writes);
  w.Key("batches").Int(batches);
  w.Key("writes_per_batch")
      .Double(batches > 0 ? static_cast<double>(writes) / batches : 0, 2);
  w.Key("burst_writes").Int(burst_writes);
  w.Key("burst_batches").Int(burst_batches);
  w.Key("batch_size_histogram").BeginArray();
  for (size_t i = 0; i < batch_hist.bucket_counts.size(); ++i) {
    w.BeginObject();
    if (i < batch_hist.upper_bounds.size()) {
      w.Key("le").Int(batch_hist.upper_bounds[i]);
    } else {
      w.Key("le").String("+Inf");
    }
    w.Key("count").Int(batch_hist.bucket_counts[i]);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).Take();
}

int Main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  std::string path = "BENCH_serve.json";
  if (argc > 1 && !quick) path = argv[1];

  std::string socket_path =
      "/tmp/bench_serve_" + std::to_string(::getpid()) + ".sock";
  ServerOptions options;
  options.address = "unix:" + socket_path;
  // A blocked write parks its connection's worker on the ticket, so the
  // pool must be able to hold the whole coalescing burst at once.
  options.worker_threads = 32;
  auto server = Server::Start(options);
  PDX_CHECK(server.ok()) << server.status().ToString();

  auto tenant = (*server)->registry().Load(kSetting);
  PDX_CHECK(tenant.ok()) << tenant.status().ToString();
  std::string tenant_id = (*tenant)->id();

  // Pre-run marks so the report covers only the measured mix.
  ServeMetrics& metrics = GlobalServeMetrics();
  int64_t writes_before = metrics.write_requests_total.Value();
  int64_t batches_before = metrics.batches_total.Value();
  obs::HistogramData hist_before = metrics.batch_size.Value();

  int clients = quick ? 4 : 8;
  int requests_per_client = quick ? 64 : 512;
  RunResult run =
      RunMix((*server)->address(), tenant_id, clients, requests_per_client);

  int64_t writes = metrics.write_requests_total.Value() - writes_before;
  int64_t batches = metrics.batches_total.Value() - batches_before;
  obs::HistogramData batch_hist = metrics.batch_size.Value();
  for (size_t i = 0; i < batch_hist.bucket_counts.size() &&
                     i < hist_before.bucket_counts.size();
       ++i) {
    batch_hist.bucket_counts[i] -= hist_before.bucket_counts[i];
  }

  // Coalescing burst: freeze the writer's drain so `burst_writes`
  // concurrent writes pile up in the admission queue, then release it —
  // they must come back in far fewer batches (ideally one). This is the
  // bench-shaped version of the acceptance criterion "N compatible writes
  // cost one chase round".
  int64_t burst_writes = 16;
  int64_t burst_batches = 0;
  {
    int64_t before = metrics.batches_total.Value();
    (*tenant)->PauseWrites();
    std::vector<std::thread> writers;
    for (int i = 0; i < burst_writes; ++i) {
      writers.emplace_back([&, i] {
        auto connection = Client::Connect((*server)->address());
        if (!connection.ok()) return;
        char request[160];
        std::snprintf(request, sizeof(request),
                      "{\"verb\":\"write\",\"tenant\":\"%s\","
                      "\"facts\":\"E(b%d, b%d).\"}",
                      tenant_id.c_str(), i, i + 1);
        (void)connection->CallRaw(request);
      });
    }
    // Wait for every burst write to be admitted before releasing the
    // writer, so the whole burst drains as one batch.
    auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while ((*tenant)->Stats().queue_depth <
               static_cast<size_t>(burst_writes) &&
           std::chrono::steady_clock::now() < give_up) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    (*tenant)->ResumeWrites();
    for (std::thread& t : writers) t.join();
    burst_batches = metrics.batches_total.Value() - before;
  }

  (*server)->Shutdown();

  int64_t errors = run.errors;
  std::fprintf(stderr,
               "bench_serve: %lld requests in %.2fs (%.0f qps), "
               "%lld errors, %lld writes in %lld batches (%.2f/batch), "
               "burst %lld writes -> %lld batches\n",
               static_cast<long long>(run.requests), run.wall_s, run.qps,
               static_cast<long long>(errors), static_cast<long long>(writes),
               static_cast<long long>(batches),
               batches > 0 ? static_cast<double>(writes) / batches : 0.0,
               static_cast<long long>(burst_writes),
               static_cast<long long>(burst_batches));

  if (quick) {
    if (errors > 0) {
      std::fprintf(stderr, "bench_serve: FAIL, %lld errors\n",
                   static_cast<long long>(errors));
      return 1;
    }
    if (burst_batches >= burst_writes) {
      std::fprintf(stderr,
                   "bench_serve: FAIL, burst writes did not coalesce\n");
      return 1;
    }
    std::fprintf(stderr, "bench_serve: quick gate OK\n");
    return 0;
  }

  std::string json = ToJson(run, clients, requests_per_client, writes, batches,
                            burst_writes, burst_batches, batch_hist);
  std::FILE* f = std::fopen(path.c_str(), "w");
  PDX_CHECK(f != nullptr) << "cannot open " << path;
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace serve
}  // namespace pdx

int main(int argc, char** argv) { return pdx::serve::Main(argc, argv); }
