// Experiment E3 (Theorem 4 / Figure 3): on C_tract settings, the
// ExistsSolution algorithm runs in polynomial time. The series sweep the
// input instance size for three C_tract families; the measured growth
// should stay polynomial (near-linear for these shapes), in sharp contrast
// with bench_nphard's exponential curves.

#include <benchmark/benchmark.h>

#include "pde/ctract_solver.h"
#include "workload/genomics.h"
#include "workload/random.h"
#include "workload/setting_gen.h"

namespace pdx {
namespace {

void BM_CtractLavSetting(benchmark::State& state) {
  Rng rng(41);
  SymbolTable symbols;
  SettingGenOptions opts;
  opts.max_arity = 2;
  auto generated = MakeRandomLavSetting(opts, &rng, &symbols);
  PDX_CHECK(generated.ok());
  const PdeSetting& setting = generated->setting;
  PDX_CHECK(setting.InCtract());
  int facts = static_cast<int>(state.range(0));
  Instance source =
      MakeRandomSourceInstance(setting, facts, facts / 2 + 2, &rng, &symbols);
  Instance target = setting.EmptyInstance();
  bool has_solution = false;
  int64_t i_can = 0;
  for (auto _ : state) {
    auto result = CtractExistsSolution(setting, source, target, &symbols);
    PDX_CHECK(result.ok());
    has_solution = result->has_solution;
    i_can = result->i_can_size;
    benchmark::DoNotOptimize(*result);
  }
  state.counters["source_facts"] = static_cast<double>(source.fact_count());
  state.counters["i_can_facts"] = static_cast<double>(i_can);
  state.counters["has_solution"] = has_solution ? 1 : 0;
}
BENCHMARK(BM_CtractLavSetting)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_CtractFullStSetting(benchmark::State& state) {
  Rng rng(43);
  SymbolTable symbols;
  SettingGenOptions opts;
  opts.max_arity = 2;
  auto generated = MakeRandomFullStSetting(opts, &rng, &symbols);
  PDX_CHECK(generated.ok());
  const PdeSetting& setting = generated->setting;
  PDX_CHECK(setting.InCtract());
  int facts = static_cast<int>(state.range(0));
  Instance source =
      MakeRandomSourceInstance(setting, facts, facts / 2 + 2, &rng, &symbols);
  Instance target = setting.EmptyInstance();
  bool has_solution = false;
  for (auto _ : state) {
    auto result = CtractExistsSolution(setting, source, target, &symbols);
    PDX_CHECK(result.ok());
    has_solution = result->has_solution;
    benchmark::DoNotOptimize(*result);
  }
  state.counters["source_facts"] = static_cast<double>(source.fact_count());
  state.counters["has_solution"] = has_solution ? 1 : 0;
}
BENCHMARK(BM_CtractFullStSetting)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_CtractGenomics(benchmark::State& state) {
  SymbolTable symbols;
  auto setting = MakeGenomicsSetting(&symbols);
  PDX_CHECK(setting.ok());
  Rng rng(47);
  GenomicsWorkloadOptions opts;
  opts.proteins = static_cast<int>(state.range(0));
  opts.annotations_per_protein = 2;
  opts.backed_target_annotations = opts.proteins / 4;
  GenomicsWorkload workload =
      MakeGenomicsWorkload(*setting, opts, &rng, &symbols);
  bool has_solution = false;
  int64_t blocks = 0;
  for (auto _ : state) {
    auto result = CtractExistsSolution(*setting, workload.source,
                                       workload.target, &symbols);
    PDX_CHECK(result.ok());
    has_solution = result->has_solution;
    blocks = result->block_count;
    benchmark::DoNotOptimize(*result);
  }
  state.counters["source_facts"] =
      static_cast<double>(workload.source.fact_count());
  state.counters["blocks"] = static_cast<double>(blocks);
  state.counters["has_solution"] = has_solution ? 1 : 0;
}
BENCHMARK(BM_CtractGenomics)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pdx

BENCHMARK_MAIN();
