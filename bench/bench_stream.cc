// Streaming chase A/B bench: replays deterministic ±Δ churn streams
// (workload/churn.h) into StreamingChase::ResumeWithDeltas and, per
// batch, into a journaled full re-chase of the stream's net instance
// (StreamingChase::Initialize — the path a caller without deletion
// propagation pays, since the serving contract keeps every generation
// retractable), and writes the results as machine-readable JSON
// (BENCH_stream.json) so the incremental-vs-full speedup is trackable
// across commits.
//
// Two n512-scale workload shapes: the relay pipeline (E feeding a chain
// of copy stages; fan-in 1, so the affected cone tracks the churn rate
// — the headline, where the ≥3x claim is stated) and the composition
// pipeline (bench_chase's pipeline_n512: E∘E -> H -> F; join fan-in
// amplifies the cone ~3x, structurally capping the advantage — reported
// for contrast). Churn rates are total batch size over live facts,
// split evenly between deletes and inserts.
//
// Per workload it reports wall time (best of `kRepeats`, summed across
// the batches of one replay), chase steps, and the deletion-propagation
// counters (retracted / rederived / dead triggers); the headline number
// is the full/incremental wall-time speedup at each churn rate. Both
// sides are cross-checked after every batch for identical canonicalized
// fingerprints — the workloads are tgd-only and confluent up to null
// renaming — so a run doubles as a correctness gate, and the
// incremental side's step total is checked against the from-scratch
// bound (deletion propagation never re-fires more than a re-chase
// would).
//
// Usage: bench_stream [output.json]  (default BENCH_stream.json in cwd)
//        bench_stream --quick        (perf smoke gate: pipeline_relay_n512
//                                     at 10% churn; exits nonzero if the
//                                     incremental path is not at least
//                                     kQuickSpeedupFloor× faster than
//                                     full re-chase or the sides
//                                     disagree)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "chase/chase.h"
#include "chase/stream.h"
#include "hom/instance_hom.h"
#include "logic/parser.h"
#include "obs/json_writer.h"
#include "workload/churn.h"
#include "workload/random.h"

namespace pdx {
namespace {

constexpr int kRepeats = 5;
constexpr int kBatches = 8;

struct StreamBenchContext {
  Schema schema;
  SymbolTable symbols;
  // Composition shape — bench_chase's pipeline_n512: E∘E -> H, H -> F.
  // Deletion fan-in is 2 (every H depends on two edges), so b% edge churn
  // dirties roughly 3b% of the derived facts: the affected cone, not the
  // implementation, caps the incremental advantage on this shape.
  std::vector<Tgd> pipeline_tgds;
  // Relay shape — the same n512 scale, pipeline depth instead of join
  // width: E feeds a chain of six copy stages. Fan-in is 1, so the
  // affected cone stays proportional to the churn rate and deletion
  // propagation shows its full advantage.
  std::vector<Tgd> relay_tgds;

  StreamBenchContext() {
    PDX_CHECK(schema.AddRelation("E", 2).ok());
    PDX_CHECK(schema.AddRelation("H", 2).ok());
    PDX_CHECK(schema.AddRelation("F", 2).ok());
    for (int i = 1; i <= 6; ++i) {
      PDX_CHECK(schema.AddRelation("R" + std::to_string(i), 2).ok());
    }
    auto deps = ParseDependencies(
        "E(x,z) & E(z,y) -> H(x,y)."
        "H(x,y) -> exists w: F(y,w).",
        schema, &symbols);
    PDX_CHECK(deps.ok());
    pipeline_tgds = std::move(deps).value().tgds;
    std::string relay = "E(x,y) -> R1(x,y).";
    for (int i = 2; i <= 6; ++i) {
      relay += "R" + std::to_string(i - 1) + "(x,y) -> R" +
               std::to_string(i) + "(x,y).";
    }
    auto relay_deps = ParseDependencies(relay, schema, &symbols);
    PDX_CHECK(relay_deps.ok());
    relay_tgds = std::move(relay_deps).value().tgds;
  }

  // A duplicate-free random E-universe with `n` nodes and up to
  // `edges_per_node * n` edges — the same shape as bench_chase's
  // RandomEdges, deduped through an instance so ChurnStream's
  // duplicate-free universe contract holds.
  std::vector<Fact> EdgeUniverse(int n, int edges_per_node, uint64_t seed) {
    Rng rng(seed);
    Instance dedup(&schema);
    for (int i = 0; i < edges_per_node * n; ++i) {
      Value u =
          symbols.InternConstant("n" + std::to_string(rng.UniformInt(n)));
      Value v =
          symbols.InternConstant("n" + std::to_string(rng.UniformInt(n)));
      dedup.AddFact(0, {u, v});
    }
    return dedup.AllFacts();
  }
};

ChaseOptions StreamOptions() {
  ChaseOptions options;
  options.strategy = ChaseStrategy::kRestricted;
  options.num_threads = 1;
  options.compile_plans = true;
  options.max_steps = 10'000'000;
  return options;
}

// A pre-generated churn replay: the initial net instance, the batch
// sequence, and the net instance after each batch. Generating it once up
// front keeps both sides — and every repeat — on byte-identical input.
struct ChurnScript {
  Instance initial;
  std::vector<ChurnBatch> batches;
  std::vector<Instance> nets;
};

// `rate` is the *total* churn per batch — the fraction of live facts
// replaced, split evenly between deletes and inserts (churn10 = 5%
// deleted + 5% inserted).
ChurnScript MakeScript(StreamBenchContext& ctx,
                       const std::vector<Fact>& universe, double rate,
                       uint64_t seed) {
  ChurnOptions copts;
  copts.delete_rate = rate / 2;
  copts.insert_rate = rate / 2;
  copts.overlap = 0.5;
  copts.seed = seed;
  // Start at 3/4 live so inserts have a fresh pool from batch one.
  ChurnStream stream(universe, universe.size() * 3 / 4, copts);
  ChurnScript script{stream.NetInstance(&ctx.schema), {}, {}};
  for (int b = 0; b < kBatches; ++b) {
    script.batches.push_back(stream.Next());
    script.nets.push_back(stream.NetInstance(&ctx.schema));
  }
  return script;
}

struct SideStats {
  double wall_ms = 0;
  int64_t steps = 0;
};

struct StreamWorkloadResult {
  std::string name;
  double churn_rate = 0;
  int64_t initial_facts = 0;
  SideStats incremental;
  SideStats full;
  // Deletion-propagation counters summed across the replay's batches.
  int64_t retracted = 0;
  int64_t rederived = 0;
  int64_t dead_triggers = 0;
  // full wall time over incremental wall time (> 1 = streaming wins).
  double speedup = 0;
};

StreamWorkloadResult RunStreamWorkload(StreamBenchContext& ctx,
                                       const std::vector<Tgd>& tgds,
                                       const std::string& name, double rate,
                                       const ChurnScript& script) {
  StreamWorkloadResult result;
  result.name = name;
  result.churn_rate = rate;
  result.initial_facts = static_cast<int64_t>(script.initial.fact_count());
  std::vector<uint64_t> inc_fps, full_fps;

  // Incremental side: one StreamingChase consumes every batch. The
  // Initialize (the from-scratch build both sides start from) is outside
  // the timed region; only the ±Δ batches are measured. Fingerprints are
  // computed between batches, also untimed.
  for (int rep = 0; rep < kRepeats; ++rep) {
    StreamingChase stream(&ctx.schema, tgds, {}, &ctx.symbols,
                          StreamOptions());
    PDX_CHECK(stream.Initialize(script.initial).ok());
    double ms = 0;
    int64_t steps = 0, retracted = 0, rederived = 0, dead = 0;
    for (size_t b = 0; b < script.batches.size(); ++b) {
      auto t0 = std::chrono::steady_clock::now();
      StatusOr<StreamStats> stats = stream.ResumeWithDeltas(
          script.batches[b].adds, script.batches[b].deletes);
      auto t1 = std::chrono::steady_clock::now();
      PDX_CHECK(stats.ok()) << "batch " << b << " failed on " << name;
      ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
      steps += stats->steps;
      retracted += stats->retracted;
      rederived += stats->rederived;
      dead += stats->dead_triggers;
      if (rep == 0) {
        inc_fps.push_back(
            CanonicalizeNulls(stream.instance()).CanonicalFingerprint());
      }
    }
    if (rep == 0 || ms < result.incremental.wall_ms) {
      result.incremental.wall_ms = ms;
    }
    result.incremental.steps = steps;
    result.retracted = retracted;
    result.rederived = rederived;
    result.dead_triggers = dead;
  }

  // Full side: re-Initialize from the post-batch net instance, per batch
  // — what a caller without deletion propagation pays. This is the
  // journaled full re-chase (StreamingChase::FullChase's path), not a
  // bare Chase: the serving contract keeps every generation retractable,
  // so the honest competitor maintains the same firing journal the
  // incremental side does.
  for (int rep = 0; rep < kRepeats; ++rep) {
    double ms = 0;
    int64_t steps = 0;
    for (size_t b = 0; b < script.nets.size(); ++b) {
      StreamingChase full(&ctx.schema, tgds, {}, &ctx.symbols,
                          StreamOptions());
      auto t0 = std::chrono::steady_clock::now();
      PDX_CHECK(full.Initialize(script.nets[b]).ok());
      auto t1 = std::chrono::steady_clock::now();
      ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
      steps += full.total_steps();
      if (rep == 0) {
        full_fps.push_back(
            CanonicalizeNulls(full.instance()).CanonicalFingerprint());
      }
    }
    if (rep == 0 || ms < result.full.wall_ms) result.full.wall_ms = ms;
    result.full.steps = steps;
  }

  PDX_CHECK(inc_fps.size() == full_fps.size());
  for (size_t b = 0; b < inc_fps.size(); ++b) {
    PDX_CHECK(inc_fps[b] == full_fps[b])
        << "incremental result diverged from full re-chase after batch "
        << b << " on " << name;
  }
  PDX_CHECK(result.incremental.steps <= result.full.steps)
      << "deletion propagation fired more steps than a re-chase on "
      << name;

  result.speedup = result.incremental.wall_ms > 0
                       ? result.full.wall_ms / result.incremental.wall_ms
                       : 0;
  std::fprintf(stderr,
               "%-24s incremental %9.2f ms (%6lld steps)   full %9.2f ms "
               "(%6lld steps)   speedup %5.2fx\n",
               name.c_str(), result.incremental.wall_ms,
               static_cast<long long>(result.incremental.steps),
               result.full.wall_ms,
               static_cast<long long>(result.full.steps), result.speedup);
  return result;
}

void WriteSide(JsonWriter& w, const char* key, const SideStats& stats) {
  w.Key(key).BeginObject();
  w.Key("wall_ms").Double(stats.wall_ms, 3);
  w.Key("chase_steps").Int(stats.steps);
  w.EndObject();
}

std::string ToJson(const std::vector<StreamWorkloadResult>& results) {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("stream");
  w.Key("repeats").Int(kRepeats);
  w.Key("batches_per_workload").Int(kBatches);
  w.Key("nproc").Int(
      static_cast<int64_t>(std::thread::hardware_concurrency()));
  w.Key("workloads").BeginArray();
  for (const StreamWorkloadResult& r : results) {
    w.BeginObject();
    w.Key("name").String(r.name);
    w.Key("churn_rate").Double(r.churn_rate, 2);
    w.Key("initial_facts").Int(r.initial_facts);
    WriteSide(w, "incremental", r.incremental);
    WriteSide(w, "full", r.full);
    w.Key("retracted").Int(r.retracted);
    w.Key("rederived").Int(r.rederived);
    w.Key("dead_triggers").Int(r.dead_triggers);
    w.Key("speedup").Double(r.speedup, 2);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).Take();
}

// Conservative speedup floor for the --quick perf smoke gate on
// pipeline_relay_n512 at 10% churn. The committed claim
// (BENCH_stream.json, DESIGN.md §4h) is ≥3x at ≤10% churn on this
// workload; the floor sits below that so scheduler noise on a loaded
// single-core box never trips it, while a real regression (e.g. the
// support index degenerating into a per-batch rebuild, or retraction
// falling back to full re-chase on a tgd-only workload) still does.
constexpr double kQuickSpeedupFloor = 2.0;

int Main(int argc, char** argv) {
  StreamBenchContext ctx;
  // Perf smoke gate (tools/check.sh): the headline churn point,
  // fingerprint- and step-cross-checked by RunStreamWorkload, then gated
  // on the incremental-vs-full speedup.
  if (argc > 1 && std::strcmp(argv[1], "--quick") == 0) {
    std::vector<Fact> universe = ctx.EdgeUniverse(512, 2, 17);
    ChurnScript script = MakeScript(ctx, universe, 0.10, 41);
    StreamWorkloadResult r = RunStreamWorkload(
        ctx, ctx.relay_tgds, "pipeline_relay_n512_churn10", 0.10, script);
    if (r.speedup < kQuickSpeedupFloor) {
      std::fprintf(stderr,
                   "FAIL: incremental re-solve only %.2fx faster than full "
                   "re-chase at 10%% churn (floor %.2fx)\n",
                   r.speedup, kQuickSpeedupFloor);
      return 1;
    }
    std::fprintf(stderr,
                 "quick gate OK: incremental %.2fx faster than full "
                 "re-chase at 10%% churn (floor %.2fx)\n",
                 r.speedup, kQuickSpeedupFloor);
    return 0;
  }

  std::vector<StreamWorkloadResult> results;
  std::vector<Fact> universe = ctx.EdgeUniverse(512, 2, 17);
  struct RatePoint {
    double rate;
    const char* name;
  };
  // Headline sweep: the relay pipeline at n512 scale. The ≤10% regime is
  // where the ≥3x claim is stated; 25% shows the advantage eroding as
  // re-derivation approaches the size of the instance.
  for (RatePoint p : {RatePoint{0.01, "pipeline_relay_n512_churn1"},
                      RatePoint{0.05, "pipeline_relay_n512_churn5"},
                      RatePoint{0.10, "pipeline_relay_n512_churn10"},
                      RatePoint{0.25, "pipeline_relay_n512_churn25"}}) {
    ChurnScript script = MakeScript(ctx, universe, p.rate, 41);
    results.push_back(
        RunStreamWorkload(ctx, ctx.relay_tgds, p.name, p.rate, script));
  }
  // The composition shape (bench_chase's pipeline_n512) for contrast:
  // join fan-in amplifies the affected cone ~3x, so the structural
  // ceiling on the speedup is far lower — reported, not gated.
  for (RatePoint p : {RatePoint{0.01, "pipeline_n512_churn1"},
                      RatePoint{0.05, "pipeline_n512_churn5"},
                      RatePoint{0.10, "pipeline_n512_churn10"}}) {
    ChurnScript script = MakeScript(ctx, universe, p.rate, 41);
    results.push_back(
        RunStreamWorkload(ctx, ctx.pipeline_tgds, p.name, p.rate, script));
  }
  // A smaller scale point at the headline rate, so the speedup's growth
  // with instance size is visible.
  {
    std::vector<Fact> small = ctx.EdgeUniverse(128, 2, 17);
    ChurnScript script = MakeScript(ctx, small, 0.10, 41);
    results.push_back(RunStreamWorkload(ctx, ctx.relay_tgds,
                                        "pipeline_relay_n128_churn10", 0.10,
                                        script));
  }

  std::string path = argc > 1 ? argv[1] : "BENCH_stream.json";
  std::string json = ToJson(results);
  std::FILE* f = std::fopen(path.c_str(), "w");
  PDX_CHECK(f != nullptr) << "cannot open " << path;
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace pdx

int main(int argc, char** argv) { return pdx::Main(argc, argv); }
