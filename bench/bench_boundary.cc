// Experiment E6 (Section 4 tightness): each minimal relaxation of C_tract
// re-creates super-polynomial behaviour even though Σ_st and Σ_ts alone
// look tractable:
//   * one target egd        (conditions 1 + 2.1 hold)   — CLIQUE-hard,
//   * one full target tgd   (conditions 1 + 2.1 hold)   — CLIQUE-hard,
//   * disjunctive ts head   (conditions 1 + 2.2 hold)   — 3-COL-hard.
// A genomics control series at comparable fact counts shows the C_tract
// baseline staying flat.

#include <benchmark/benchmark.h>

#include "pde/ctract_solver.h"
#include "pde/generic_solver.h"
#include "workload/genomics.h"
#include "workload/graph_gen.h"
#include "workload/random.h"
#include "workload/reductions.h"

namespace pdx {
namespace {

constexpr int kCliqueSize = 3;

Graph TriangleFreeGraph(int n) {
  Graph g;
  g.node_count = n;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if ((u + v) % 2 == 1) g.edges.emplace_back(u, v);
    }
  }
  return g;
}

void RunGeneric(benchmark::State& state, const PdeSetting& setting,
                const Instance& source, SymbolTable* symbols,
                bool expect_solution) {
  GenericSolverOptions options;
  options.max_nodes = 50'000'000;
  int64_t nodes = 0;
  for (auto _ : state) {
    auto result = GenericExistsSolution(setting, source,
                                        setting.EmptyInstance(), symbols,
                                        options);
    PDX_CHECK(result.ok());
    PDX_CHECK((result->outcome == SolveOutcome::kSolutionFound) ==
              expect_solution);
    nodes = result->nodes_explored;
  }
  state.counters["source_facts"] = static_cast<double>(source.fact_count());
  state.counters["search_nodes"] = static_cast<double>(nodes);
}

void BM_EgdBoundary(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  SymbolTable symbols;
  auto setting = MakeEgdBoundarySetting(&symbols);
  PDX_CHECK(setting.ok());
  Graph graph = TriangleFreeGraph(n);
  Instance source =
      MakeEgdBoundarySourceInstance(*setting, graph, kCliqueSize, &symbols);
  RunGeneric(state, *setting, source, &symbols, /*expect_solution=*/false);
}
BENCHMARK(BM_EgdBoundary)
    ->Arg(4)->Arg(5)->Arg(6)->Arg(7)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_TargetTgdBoundary(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  SymbolTable symbols;
  auto setting = MakeTargetTgdBoundarySetting(&symbols);
  PDX_CHECK(setting.ok());
  Graph graph = TriangleFreeGraph(n);
  Instance source = MakeTargetTgdBoundarySourceInstance(
      *setting, graph, kCliqueSize, &symbols);
  RunGeneric(state, *setting, source, &symbols, /*expect_solution=*/false);
}
BENCHMARK(BM_TargetTgdBoundary)
    ->Arg(4)->Arg(5)->Arg(6)->Arg(7)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_ThreeColBoundary(benchmark::State& state) {
  int cycle = static_cast<int>(state.range(0));  // odd
  SymbolTable symbols;
  auto setting = MakeThreeColSetting(&symbols);
  PDX_CHECK(setting.ok());
  // Odd wheels W_n (odd cycle + hub) are 4-chromatic, but the obstruction
  // is global: the solver must exhaust the cycle's colorings before
  // concluding "no", so the search grows with the cycle length.
  Graph graph;
  graph.node_count = cycle + 1;
  for (int i = 0; i < cycle; ++i) {
    graph.edges.emplace_back(std::min(i, (i + 1) % cycle),
                             std::max(i, (i + 1) % cycle));
    graph.edges.emplace_back(i, cycle);  // spoke to the hub
  }
  PDX_CHECK(!Is3Colorable(graph));
  Instance source = MakeThreeColSourceInstance(*setting, graph, &symbols);
  RunGeneric(state, *setting, source, &symbols, /*expect_solution=*/false);
}
BENCHMARK(BM_ThreeColBoundary)
    ->Arg(5)->Arg(7)->Arg(9)->Arg(11)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Control: a C_tract workload at comparable-and-larger fact counts solved
// by the Figure 3 algorithm stays polynomial.
void BM_CtractControl(benchmark::State& state) {
  SymbolTable symbols;
  auto setting = MakeGenomicsSetting(&symbols);
  PDX_CHECK(setting.ok());
  Rng rng(17);
  GenomicsWorkloadOptions opts;
  opts.proteins = static_cast<int>(state.range(0));
  GenomicsWorkload workload =
      MakeGenomicsWorkload(*setting, opts, &rng, &symbols);
  for (auto _ : state) {
    auto result = CtractExistsSolution(*setting, workload.source,
                                       workload.target, &symbols);
    PDX_CHECK(result.ok());
    benchmark::DoNotOptimize(*result);
  }
  state.counters["source_facts"] =
      static_cast<double>(workload.source.fact_count());
}
BENCHMARK(BM_CtractControl)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pdx

BENCHMARK_MAIN();
